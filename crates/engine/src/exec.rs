//! The executor: run a compiled [`Plan`] over an indexed [`Instance`].
//!
//! The Yannakakis path is the full three-phase algorithm, with every phase a
//! hash operation rather than a scan:
//!
//! 1. **match sets** — each join-tree node's atom is matched against its
//!    relation; atoms with constant positions probe a cached multi-column
//!    index instead of scanning;
//! 2. **semijoin reduction** — an upward (leaf-to-root) sweep removes
//!    dangling tuples, then for non-Boolean queries a downward sweep makes
//!    every node consistent with its parent; both are hash semijoins;
//! 3. **join-back-up** — non-Boolean answers are produced by hash-joining
//!    each subtree bottom-up, projecting eagerly onto the node's carry set
//!    (its subtree's head variables plus the join key with the parent), so
//!    intermediate tables stay output-bounded instead of exploding into the
//!    cross-product walk the scan-based evaluator performs.
//!
//! The fallback path executes the planner's fixed atom order, fetching the
//! candidates of each step from a cached hash index on exactly the step's
//! bound columns.
//!
//! Execution itself is **read-only**: [`execute_with`] consumes an immutable
//! [`PlanIndexes`] snapshot, so the concurrent [`crate::Database`] can run
//! many queries at once without holding the index-cache lock — the snapshot
//! is assembled (and any missing indexes built) in one short locked section
//! beforehand.  Snapshot entries that could not be built degrade to filtered
//! scans, never to wrong answers.

use crate::index::PlanIndexes;
use crate::plan::{ExecPlan, IndexedPlan, NodeShape, Plan, YannakakisPlan};
use sac_common::{Substitution, Symbol, Term};
use sac_storage::{Instance, Relation};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// The multi-column index keys `plan` probes during execution — exactly the
/// entries [`IndexCache::snapshot`] must provide for an index-served run.
pub(crate) fn required_indexes(plan: &Plan) -> Vec<(Symbol, Vec<usize>)> {
    match &plan.exec {
        ExecPlan::Yannakakis(yp) => yp
            .shapes
            .iter()
            .zip(&yp.query.body)
            .filter(|(shape, _)| shape.const_positions.len() > 1)
            .map(|(shape, atom)| (atom.predicate, shape.const_positions.clone()))
            .collect(),
        ExecPlan::Indexed(ip) => ip
            .order
            .iter()
            .enumerate()
            .filter(|(step, _)| ip.bound_positions[*step].len() > 1)
            .map(|(step, &atom_idx)| {
                (
                    ip.query.body[atom_idx].predicate,
                    ip.bound_positions[step].clone(),
                )
            })
            .collect(),
    }
}

/// Executes `plan` over `db` against an immutable index snapshot (see
/// [`required_indexes`]).  Missing snapshot entries fall back to scans.
pub(crate) fn execute_with(
    plan: &Plan,
    db: &Instance,
    indexes: &PlanIndexes,
) -> BTreeSet<Vec<Term>> {
    match &plan.exec {
        ExecPlan::Yannakakis(yp) => run_yannakakis(yp, db, indexes),
        ExecPlan::Indexed(ip) => run_indexed(ip, db, indexes),
    }
}

/// An intermediate relation over query variables.
#[derive(Debug, Clone)]
struct Table {
    vars: Vec<Symbol>,
    tuples: HashSet<Vec<Term>>,
}

impl Table {
    /// The relation holding exactly the empty tuple (join identity).
    fn unit() -> Table {
        Table {
            vars: Vec::new(),
            tuples: HashSet::from([Vec::new()]),
        }
    }

    fn positions_of(&self, vars: &[Symbol]) -> Vec<usize> {
        vars.iter()
            .map(|v| {
                self.vars
                    .iter()
                    .position(|u| u == v)
                    .expect("variable present in table")
            })
            .collect()
    }

    /// Projects onto `keep` (must be a subset of the table's variables),
    /// deduplicating.
    fn project(&self, keep: &[Symbol]) -> Table {
        let positions = self.positions_of(keep);
        Table {
            vars: keep.to_vec(),
            tuples: self
                .tuples
                .iter()
                .map(|t| positions.iter().map(|p| t[*p]).collect())
                .collect(),
        }
    }

    /// Hash semijoin: keeps only tuples agreeing with some tuple of `other`
    /// on the shared variables.  With no shared variables this is "keep all
    /// iff `other` is non-empty".
    fn semijoin(&mut self, other: &Table) {
        let shared: Vec<Symbol> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        if shared.is_empty() {
            if other.tuples.is_empty() {
                self.tuples.clear();
            }
            return;
        }
        let my_pos = self.positions_of(&shared);
        let other_pos = other.positions_of(&shared);
        let keys: HashSet<Vec<Term>> = other
            .tuples
            .iter()
            .map(|t| other_pos.iter().map(|p| t[*p]).collect())
            .collect();
        self.tuples
            .retain(|t| keys.contains(&my_pos.iter().map(|p| t[*p]).collect::<Vec<_>>()));
    }

    /// Hash join on the shared variables; the output's variables are
    /// `self.vars` followed by `other`'s non-shared variables.  With no
    /// shared variables this is the cross product.
    fn join(&self, other: &Table) -> Table {
        let shared: Vec<Symbol> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        let my_pos = self.positions_of(&shared);
        let other_pos = other.positions_of(&shared);
        let extra_pos: Vec<usize> = (0..other.vars.len())
            .filter(|p| !other_pos.contains(p))
            .collect();

        let mut vars = self.vars.clone();
        vars.extend(extra_pos.iter().map(|p| other.vars[*p]));

        // Index the smaller operand's tuples by join key and probe with the
        // larger; either way, emitted tuples are `self`'s columns followed by
        // `other`'s extras.
        let emit = |mine: &Vec<Term>, theirs: &Vec<Term>| -> Vec<Term> {
            let mut combined = mine.clone();
            combined.extend(extra_pos.iter().map(|p| theirs[*p]));
            combined
        };
        let mut tuples = HashSet::new();
        if self.tuples.len() <= other.tuples.len() {
            let mut by_key: HashMap<Vec<Term>, Vec<&Vec<Term>>> = HashMap::new();
            for t in &self.tuples {
                let key: Vec<Term> = my_pos.iter().map(|p| t[*p]).collect();
                by_key.entry(key).or_default().push(t);
            }
            for t in &other.tuples {
                let key: Vec<Term> = other_pos.iter().map(|p| t[*p]).collect();
                if let Some(matches) = by_key.get(&key) {
                    for m in matches {
                        tuples.insert(emit(m, t));
                    }
                }
            }
        } else {
            let mut by_key: HashMap<Vec<Term>, Vec<&Vec<Term>>> = HashMap::new();
            for t in &other.tuples {
                let key: Vec<Term> = other_pos.iter().map(|p| t[*p]).collect();
                by_key.entry(key).or_default().push(t);
            }
            for t in &self.tuples {
                let key: Vec<Term> = my_pos.iter().map(|p| t[*p]).collect();
                if let Some(matches) = by_key.get(&key) {
                    for m in matches {
                        tuples.insert(emit(t, m));
                    }
                }
            }
        }
        Table { vars, tuples }
    }
}

/// Computes a node's match set: the projection onto its distinct variables of
/// the relation tuples matching the atom's constants and repeated variables.
/// Constant positions are served by a snapshot index when available; the
/// fallback is a filtered scan.
fn node_matches(
    shape: &NodeShape,
    predicate: sac_common::Symbol,
    arity: usize,
    db: &Instance,
    indexes: &PlanIndexes,
) -> Table {
    let mut table = Table {
        vars: shape.vars.clone(),
        tuples: HashSet::new(),
    };
    let Some(rel) = db.relation(predicate) else {
        return table;
    };
    if rel.arity() != arity {
        return table;
    }
    let project =
        |tuple: &[Term]| -> Vec<Term> { shape.var_first.iter().map(|p| tuple[*p]).collect() };
    let consistent =
        |tuple: &[Term]| -> bool { shape.eq_checks.iter().all(|(a, b)| tuple[*a] == tuple[*b]) };
    let constants_match = |tuple: &[Term]| -> bool {
        shape
            .const_positions
            .iter()
            .zip(&shape.const_key)
            .all(|(p, k)| tuple[*p] == *k)
    };
    match shape.const_positions.len() {
        0 => {
            for tuple in rel.iter() {
                if consistent(tuple) {
                    table.tuples.insert(project(tuple));
                }
            }
        }
        // One constant: the storage layer already maintains this index
        // incrementally — no cached copy needed.
        1 => {
            for &row in rel.rows_with(shape.const_positions[0], shape.const_key[0]) {
                let tuple = rel.row(row).expect("indexed row exists");
                if consistent(tuple) {
                    table.tuples.insert(project(tuple));
                }
            }
        }
        _ => match indexes.get(&(predicate, shape.const_positions.clone())) {
            Some(index) => {
                for &row in index.rows(&shape.const_key) {
                    let tuple = rel.row(row).expect("indexed row exists");
                    if consistent(tuple) {
                        table.tuples.insert(project(tuple));
                    }
                }
            }
            // No snapshot index (e.g. the cache could not build one):
            // degrade to a filtered scan.
            None => {
                for tuple in rel.iter() {
                    if constants_match(tuple) && consistent(tuple) {
                        table.tuples.insert(project(tuple));
                    }
                }
            }
        },
    }
    table
}

fn run_yannakakis(
    plan: &YannakakisPlan,
    db: &Instance,
    indexes: &PlanIndexes,
) -> BTreeSet<Vec<Term>> {
    let n = plan.tree.len();
    let mut answers = BTreeSet::new();
    if n == 0 {
        // The empty conjunction holds vacuously, with the empty answer tuple.
        answers.insert(Vec::new());
        return answers;
    }

    // Phase 1: match sets.
    let mut tables: Vec<Table> = (0..n)
        .map(|i| {
            let atom = &plan.tree.atoms[i];
            node_matches(&plan.shapes[i], atom.predicate, atom.arity(), db, indexes)
        })
        .collect();

    // Phase 2a: upward semijoin sweep (children into parents, leaves first).
    for &node in plan.order.iter().rev() {
        for &child in &plan.children[node] {
            let child_table = std::mem::replace(&mut tables[child], Table::unit());
            tables[node].semijoin(&child_table);
            tables[child] = child_table;
        }
        if tables[node].tuples.is_empty() {
            return answers; // no homomorphism covers this node
        }
    }
    if plan.query.head.is_empty() {
        answers.insert(Vec::new());
        return answers;
    }

    // Phase 2b: downward sweep (parents into children, roots first).
    for &node in &plan.order {
        if let Some(parent) = plan.tree.parent[node] {
            let parent_table = std::mem::replace(&mut tables[parent], Table::unit());
            tables[node].semijoin(&parent_table);
            tables[parent] = parent_table;
        }
    }

    // Phase 3: bottom-up hash join, projecting each subtree onto its carry
    // set as soon as it is joined.
    let mut joined: Vec<Option<Table>> = vec![None; n];
    for &node in plan.order.iter().rev() {
        let mut t = std::mem::replace(&mut tables[node], Table::unit());
        for &child in &plan.children[node] {
            let child_table = joined[child].take().expect("children joined first");
            t = t.join(&child_table);
        }
        joined[node] = Some(t.project(&plan.carry[node]));
    }
    let mut acc = Table::unit();
    for root in plan.tree.roots() {
        let root_table = joined[root].take().expect("roots joined last");
        acc = acc.join(&root_table);
    }

    // Materialize answers in head order (head variables may repeat).
    let head_pos = acc.positions_of(&plan.query.head);
    for t in &acc.tuples {
        answers.insert(head_pos.iter().map(|p| t[*p]).collect());
    }
    answers
}

fn run_indexed(plan: &IndexedPlan, db: &Instance, indexes: &PlanIndexes) -> BTreeSet<Vec<Term>> {
    // Resolve each step's snapshot index once, so the recursion below does no
    // hashing on the (predicate, columns) key per visited node.
    let step_indexes: Vec<Option<&Arc<crate::index::JoinIndex>>> = plan
        .order
        .iter()
        .enumerate()
        .map(|(step, &atom_idx)| {
            let bp = &plan.bound_positions[step];
            if bp.len() > 1 {
                indexes.get(&(plan.query.body[atom_idx].predicate, bp.clone()))
            } else {
                None
            }
        })
        .collect();
    let mut answers = BTreeSet::new();
    let mut state = Substitution::new();
    indexed_step(plan, db, &step_indexes, 0, &mut state, &mut answers);
    answers
}

fn indexed_step(
    plan: &IndexedPlan,
    db: &Instance,
    step_indexes: &[Option<&Arc<crate::index::JoinIndex>>],
    depth: usize,
    state: &mut Substitution,
    answers: &mut BTreeSet<Vec<Term>>,
) {
    if depth == plan.order.len() {
        let tuple: Vec<Term> = plan
            .query
            .head
            .iter()
            .map(|v| state.apply(Term::Variable(*v)))
            .collect();
        if tuple.iter().all(|t| !t.is_variable()) {
            answers.insert(tuple);
        }
        return;
    }
    let atom_idx = plan.order[depth];
    let atom = &plan.query.body[atom_idx];
    let Some(rel) = db.relation(atom.predicate) else {
        return;
    };
    if rel.arity() != atom.arity() {
        return;
    }
    let bp = &plan.bound_positions[depth];

    let try_tuple =
        |tuple: &[Term], state: &mut Substitution, answers: &mut BTreeSet<Vec<Term>>| {
            let target = sac_common::Atom::new(atom.predicate, tuple.to_vec());
            let mut extended = state.clone();
            if extended.match_atom(atom, &target) {
                std::mem::swap(state, &mut extended);
                indexed_step(plan, db, step_indexes, depth + 1, state, answers);
                std::mem::swap(state, &mut extended);
            }
        };

    if bp.is_empty() {
        for tuple in rel.iter() {
            try_tuple(tuple, state, answers);
        }
        return;
    }
    let key: Vec<Term> = bp.iter().map(|&pos| state.apply(atom.args[pos])).collect();
    if key.iter().any(|t| t.is_variable()) {
        // The planner guarantees bound positions are bound; fall back to a
        // filtered scan if that invariant is ever violated.
        for tuple in scan_candidates(rel, atom, state) {
            try_tuple(&tuple, state, answers);
        }
        return;
    }
    if bp.len() == 1 {
        // Single bound column: the storage layer's incremental index serves
        // the lookup directly.
        for &row in rel.rows_with(bp[0], key[0]) {
            let tuple = rel.row(row).expect("indexed row exists").to_vec();
            try_tuple(&tuple, state, answers);
        }
        return;
    }
    match step_indexes[depth] {
        Some(index) => {
            for &row in index.rows(&key) {
                let tuple = rel.row(row).expect("indexed row exists").to_vec();
                try_tuple(&tuple, state, answers);
            }
        }
        None => {
            for tuple in scan_candidates(rel, atom, state) {
                try_tuple(&tuple, state, answers);
            }
        }
    }
}

/// Fallback candidate enumeration through the storage layer's single-column
/// indexes (used only if a snapshot multi-column index is unavailable).
fn scan_candidates(
    rel: &Relation,
    atom: &sac_common::Atom,
    state: &Substitution,
) -> Vec<Vec<Term>> {
    let bound: Vec<(usize, Term)> = atom
        .args
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            let image = state.apply(*t);
            (!image.is_variable()).then_some((i, image))
        })
        .collect();
    rel.select(&bound).map(|t| t.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::EngineConfig;
    use crate::index::IndexCache;
    use crate::plan::plan_query;
    use sac_common::{atom, intern, Atom};
    use sac_query::{evaluate, ConjunctiveQuery};

    fn run(q: &ConjunctiveQuery, db: &Instance) -> BTreeSet<Vec<Term>> {
        let plan = plan_query(q, &[], db, &EngineConfig::default());
        let mut cache = IndexCache::new(db);
        let snapshot = cache.snapshot(db, &required_indexes(&plan));
        execute_with(&plan, db, &snapshot)
    }

    fn music_db() -> Instance {
        Instance::from_atoms(vec![
            atom!("Interest", cst "alice", cst "jazz"),
            atom!("Interest", cst "bob", cst "rock"),
            atom!("Class", cst "kind_of_blue", cst "jazz"),
            atom!("Class", cst "nevermind", cst "rock"),
            atom!("Owns", cst "alice", cst "kind_of_blue"),
            atom!("Owns", cst "bob", cst "kind_of_blue"),
        ])
        .unwrap()
    }

    #[test]
    fn acyclic_query_matches_naive_evaluation() {
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let db = music_db();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn cyclic_query_matches_naive_evaluation() {
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap();
        let db = music_db();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn constants_in_atoms_probe_indexes() {
        let q = ConjunctiveQuery::new(
            vec![intern("y")],
            vec![
                atom!("Interest", cst "alice", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let db = music_db();
        let res = run(&q, &db);
        assert_eq!(res, evaluate(&q, &db));
        assert_eq!(res.len(), 1);
        assert!(res.contains(&vec![Term::constant("kind_of_blue")]));
    }

    #[test]
    fn execution_degrades_to_scans_without_a_snapshot() {
        // Force the no-snapshot path: execute plans against an empty
        // PlanIndexes map and check answers are still exact.
        let db = music_db();
        for q in [
            ConjunctiveQuery::new(
                vec![intern("y")],
                vec![
                    atom!("Owns", cst "alice", var "y"),
                    atom!("Class", var "y", cst "jazz"),
                ],
            )
            .unwrap(),
            ConjunctiveQuery::boolean(vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ])
            .unwrap(),
        ] {
            let plan = plan_query(&q, &[], &db, &EngineConfig::default());
            let empty = PlanIndexes::new();
            assert_eq!(execute_with(&plan, &db, &empty), evaluate(&q, &db));
        }
    }

    #[test]
    fn repeated_variables_within_atoms_are_honoured() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", cst "a"),
            atom!("R", cst "a", cst "b"),
        ])
        .unwrap();
        let q =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("R", var "x", var "x")]).unwrap();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn disconnected_queries_cross_product() {
        let db = Instance::from_atoms(vec![
            atom!("A", cst "1"),
            atom!("A", cst "2"),
            atom!("B", cst "x"),
        ])
        .unwrap();
        let q = ConjunctiveQuery::new(
            vec![intern("u"), intern("v")],
            vec![atom!("A", var "u"), atom!("B", var "v")],
        )
        .unwrap();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn boolean_queries_and_empty_databases() {
        let q = ConjunctiveQuery::boolean(vec![atom!("Owns", var "x", var "y")]).unwrap();
        assert_eq!(run(&q, &music_db()).len(), 1);
        assert!(run(&q, &Instance::new()).is_empty());
        // The empty conjunction holds vacuously.
        let empty_q = ConjunctiveQuery::boolean(vec![]).unwrap();
        assert_eq!(run(&empty_q, &Instance::new()).len(), 1);
    }

    #[test]
    fn repeated_head_variables_produce_repeated_columns() {
        let db = music_db();
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("x")],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap();
        let res = run(&q, &db);
        assert_eq!(res, evaluate(&q, &db));
        assert!(res.iter().all(|t| t[0] == t[1]));
    }

    #[test]
    fn dangling_tuples_are_filtered_by_the_semijoin_sweeps() {
        let db = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
            atom!("E", cst "x", cst "y"),
        ])
        .unwrap();
        let q = ConjunctiveQuery::new(
            vec![intern("u")],
            vec![atom!("E", var "u", var "v"), atom!("E", var "v", var "w")],
        )
        .unwrap();
        let res = run(&q, &db);
        assert_eq!(res.len(), 1);
        assert!(res.contains(&vec![Term::constant("a")]));
    }

    #[test]
    fn projection_stays_output_bounded_on_star_joins() {
        // A star with many rays per hub: the carry projection keeps the
        // intermediate tables at hub-cardinality instead of ray^rays.
        let mut db = Instance::new();
        for h in 0..3 {
            for l in 0..20 {
                db.insert(Atom::from_parts(
                    "E",
                    vec![
                        Term::constant(&format!("h{h}")),
                        Term::constant(&format!("l{h}_{l}")),
                    ],
                ))
                .unwrap();
            }
        }
        let q = ConjunctiveQuery::new(
            vec![intern("c")],
            vec![
                atom!("E", var "c", var "l1"),
                atom!("E", var "c", var "l2"),
                atom!("E", var "c", var "l3"),
            ],
        )
        .unwrap();
        let res = run(&q, &db);
        assert_eq!(res.len(), 3);
        assert_eq!(res, evaluate(&q, &db));
    }

    #[test]
    fn larger_agreement_sweep_on_random_style_graphs() {
        let db = sac_gen::random_graph_database(12, 40, 7);
        for q in [
            sac_gen::path_query(3),
            sac_gen::star_query(3),
            sac_gen::cycle_query(3),
            sac_gen::cycle_query(4),
            sac_gen::clique_query(3),
        ] {
            assert_eq!(run(&q, &db), evaluate(&q, &db), "disagreement on {q}");
        }
    }
}
