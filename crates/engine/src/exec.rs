//! The executor: run a compiled [`Plan`] over an indexed [`Instance`].
//!
//! The Yannakakis path is the full three-phase algorithm, with every phase a
//! hash operation rather than a scan — and every hash operation works on
//! packed rows of dictionary **codes** (`u32`, see [`sac_storage::dict`]),
//! read straight off the columnar relation buffers; terms are materialized
//! exactly once, when the final answer set is decoded:
//!
//! 1. **match sets** — each join-tree node's atom is matched against its
//!    relation by sweeping the relevant column slices (code comparisons for
//!    repeated variables and constants, gather of the variable columns);
//!    atoms with constant positions probe a sidecar or cached multi-column
//!    index instead of scanning;
//! 2. **semijoin reduction** — an upward (leaf-to-root) sweep removes
//!    dangling tuples, then for non-Boolean queries a downward sweep makes
//!    every node consistent with its parent; both are hash semijoins over
//!    code rows;
//! 3. **join-back-up** — non-Boolean answers are produced by hash-joining
//!    each subtree bottom-up, projecting eagerly onto the node's carry set
//!    (its subtree's head variables plus the join key with the parent), so
//!    intermediate tables stay output-bounded instead of exploding into the
//!    cross-product walk the scan-based evaluator performs.
//!
//! The fallback path executes the planner's fixed atom order, fetching the
//! candidates of each step from a cached hash index on exactly the step's
//! bound columns.  It is the non-hot rung (cyclic cores only) and keeps the
//! simpler term-level representation via [`Substitution`].
//!
//! ## Parallel execution
//!
//! With [`ExecContext::parallelism`] above 1 and a pool handle attached,
//! the data-proportional phases submit morsels to the persistent
//! [`crate::pool::WorkerPool`] owned by the database, partitioned by
//! cached relation shards ([`PlanShards`]):
//!
//! * **match sets** are computed per `(node, shard)` morsel — full-scan
//!   nodes split into one morsel per hash shard — and the per-shard
//!   partial tables are merged by hash-set union;
//! * **semijoin sweeps** chunk each large node table into morsels of
//!   roughly [`ExecContext::morsel_rows`] rows each and filter the chunks
//!   concurrently against the shared key set;
//! * the **fallback search** seeds one backtracking morsel per shard of
//!   the first atom's relation and merges the per-shard answer sets.
//!
//! Morsel *sizes* are row-count-derived (the same figures
//! [`sac_storage::RelationStats`] reports), not thread-count-derived: a
//! region over `n` rows produces about `n / morsel_rows` morsels, clamped
//! to a small multiple of the parallelism, so small inputs stay serial and
//! large inputs produce enough morsels for the pool's stealing to balance
//! skew.
//!
//! Merging is order-insensitive (sets all the way down) and the final
//! answers land in a `BTreeSet` of decoded terms, so results are
//! byte-identical to the serial path regardless of thread interleaving.
//!
//! Execution itself is **read-only**: [`execute_with`] consumes an immutable
//! [`ExecContext`] snapshot, so the concurrent [`crate::Database`] can run
//! many queries at once without holding the index-cache lock — the snapshot
//! is assembled (and any missing indexes or shards built) in one short
//! locked section beforehand.  Snapshot entries that could not be built
//! degrade to serial filtered scans, never to wrong answers.

use crate::index::{PlanIndexes, PlanShards};
use crate::plan::{ExecPlan, IndexedPlan, NodeShape, Plan, YannakakisPlan};
use crate::pool::WorkerPool;
use sac_common::{FxHashMap, FxHashSet, Substitution, Symbol, Term};
use sac_storage::{dict, Instance, Relation};
use sac_telemetry::{Phase, Probe};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Everything one plan execution works from: immutable index and shard
/// snapshots, the configured parallelism and size gate, and counters the
/// run reports back into [`crate::EngineMetrics`].
pub(crate) struct ExecContext {
    pub(crate) indexes: PlanIndexes,
    pub(crate) shards: PlanShards,
    pub(crate) parallelism: usize,
    /// Tables smaller than this are processed serially — below it the
    /// thread-spawn overhead dwarfs the work (see
    /// [`crate::ExecOptions::min_parallel_rows`]).
    pub(crate) min_parallel_rows: usize,
    /// Handle to the database's persistent worker pool; `None` for serial
    /// contexts (`parallelism == 1` never creates a pool).
    pool: Option<Arc<WorkerPool>>,
    shard_tasks: AtomicUsize,
    morsels: AtomicUsize,
    pool_width: AtomicUsize,
    /// Phase timers and per-node row counts for a traced run; `None` for
    /// ordinary runs, whose only tracing cost is this `Option` check.
    /// Only the orchestrating thread marks, so the mutex is uncontended —
    /// it exists because the context is shared as `&self`.
    probe: Option<Mutex<Probe>>,
}

impl ExecContext {
    pub(crate) fn new(
        indexes: PlanIndexes,
        shards: PlanShards,
        parallelism: usize,
        min_parallel_rows: usize,
    ) -> ExecContext {
        ExecContext {
            indexes,
            shards,
            parallelism: parallelism.max(1),
            min_parallel_rows,
            pool: None,
            shard_tasks: AtomicUsize::new(0),
            morsels: AtomicUsize::new(0),
            pool_width: AtomicUsize::new(0),
            probe: None,
        }
    }

    /// Attaches the database's worker pool (builder-style).  Without a
    /// pool every region runs inline regardless of `parallelism`.
    pub(crate) fn with_pool(mut self, pool: Option<Arc<WorkerPool>>) -> ExecContext {
        self.pool = pool;
        self
    }

    /// A context for plain serial execution.
    #[cfg(test)]
    pub(crate) fn serial(indexes: PlanIndexes) -> ExecContext {
        ExecContext::new(indexes, PlanShards::new(), 1, 0)
    }

    /// Attaches `probe`: execution phases and per-node row counts are
    /// recorded into it from here on.
    pub(crate) fn with_probe(mut self, probe: Probe) -> ExecContext {
        self.probe = Some(Mutex::new(probe));
        self
    }

    /// Detaches the probe to read the collected trace back out.
    pub(crate) fn take_probe(&mut self) -> Option<Probe> {
        self.probe.take().map(|m| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        })
    }

    /// Whether a probe is attached (callers gate string formatting on it).
    fn probing(&self) -> bool {
        self.probe.is_some()
    }

    /// Ends `phase` on the attached probe, if any.
    pub(crate) fn mark(&self, phase: Phase) {
        if let Some(probe) = &self.probe {
            probe
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .mark(phase);
        }
    }

    /// Records one join-tree node's rows in/out on the attached probe.
    fn note_node(&self, node: impl Into<String>, rows_in: usize, rows_out: usize) {
        if let Some(probe) = &self.probe {
            probe
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .node(node, rows_in, rows_out);
        }
    }

    fn note_parallel(&self, tasks: usize) {
        self.shard_tasks.fetch_add(tasks, Ordering::Relaxed);
    }

    /// Target rows per morsel for data-chunked regions.  The serial size
    /// gate doubles as the morsel granule: below `min_parallel_rows` the
    /// dispatch cost exceeds the scan, so that is exactly the row count a
    /// single morsel should carry.
    pub(crate) fn morsel_rows(&self) -> usize {
        self.min_parallel_rows.max(1)
    }

    /// Whether this context can actually fan work out (a pool is attached
    /// and parallelism allows it).  Callers use this to skip the
    /// chunk/merge bookkeeping entirely on serial runs.
    fn parallel_enabled(&self) -> bool {
        self.parallelism > 1 && self.pool.is_some()
    }

    /// Runs one parallel region over `items` on the database's pool — one
    /// morsel per item, results in item order — and records the morsel
    /// count and pool width for [`crate::EngineMetrics`].  Falls back to
    /// an inline map when no pool is attached or there is at most one
    /// item, which is exactly the serial path byte-for-byte.
    fn run_region<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match &self.pool {
            Some(pool) if self.parallelism > 1 && items.len() > 1 => {
                self.morsels.fetch_add(items.len(), Ordering::Relaxed);
                self.pool_width.store(pool.size(), Ordering::Relaxed);
                pool.run(items, f)
            }
            _ => items.iter().map(f).collect(),
        }
    }

    /// The shard decomposition to scan for `atom`, if the snapshot holds one
    /// and the relation exists with the atom's arity (shards are built from
    /// the same relation under the same epoch, so they share its arity).
    fn shards_for<'a>(
        &'a self,
        db: &Instance,
        atom: &sac_common::Atom,
    ) -> Option<&'a crate::index::ShardSet> {
        self.shards
            .get(&atom.predicate)
            .filter(|_| {
                db.relation(atom.predicate)
                    .is_some_and(|rel| rel.arity() == atom.arity())
            })
            .map(|arc| &**arc)
    }

    /// Per-shard tasks executed by this run's parallel regions.
    pub(crate) fn shard_tasks(&self) -> usize {
        self.shard_tasks.load(Ordering::Relaxed)
    }

    /// Morsels this run dispatched to the worker pool.
    pub(crate) fn morsels_dispatched(&self) -> usize {
        self.morsels.load(Ordering::Relaxed)
    }

    /// Pool width the run had available: the number of persistent worker
    /// threads, reported once (0 when every region ran inline).  Kept
    /// under the historical `threads_spawned` name for trace/metric
    /// continuity — the pool spawns nothing per run.
    pub(crate) fn threads_spawned(&self) -> usize {
        self.pool_width.load(Ordering::Relaxed)
    }
}

/// The multi-column index keys `plan` probes during execution — exactly the
/// entries [`crate::IndexCache::snapshot`] must provide for an index-served
/// run.
pub(crate) fn required_indexes(plan: &Plan) -> Vec<(Symbol, Vec<usize>)> {
    match &plan.exec {
        ExecPlan::Yannakakis(yp) => yp
            .shapes
            .iter()
            .zip(&yp.query.body)
            .filter(|(shape, _)| shape.const_positions.len() > 1)
            .map(|(shape, atom)| (atom.predicate, shape.const_positions.clone()))
            .collect(),
        ExecPlan::Indexed(ip) => ip
            .order
            .iter()
            .enumerate()
            .filter(|(step, _)| ip.bound_positions[*step].len() > 1)
            .map(|(step, &atom_idx)| {
                (
                    ip.query.body[atom_idx].predicate,
                    ip.bound_positions[step].clone(),
                )
            })
            .collect(),
    }
}

/// The predicates `plan` scans in full — exactly the relations
/// [`crate::IndexCache::snapshot_shards`] should decompose for a parallel
/// run.  Yannakakis scans every constant-free node; the fallback search
/// scans only its first (unbound) step.
pub(crate) fn required_shards(plan: &Plan) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = Vec::new();
    let mut push = |p: Symbol| {
        if !out.contains(&p) {
            out.push(p);
        }
    };
    match &plan.exec {
        ExecPlan::Yannakakis(yp) => {
            for (shape, atom) in yp.shapes.iter().zip(&yp.query.body) {
                if shape.const_positions.is_empty() {
                    push(atom.predicate);
                }
            }
        }
        ExecPlan::Indexed(ip) => {
            if let Some(&first) = ip.order.first() {
                if ip.bound_positions[0].is_empty() {
                    push(ip.query.body[first].predicate);
                }
            }
        }
    }
    out
}

/// Executes `plan` over `db` against an immutable [`ExecContext`] snapshot
/// (see [`required_indexes`] / [`required_shards`]).  Missing snapshot
/// entries fall back to serial scans.
pub(crate) fn execute_with(plan: &Plan, db: &Instance, ctx: &ExecContext) -> BTreeSet<Vec<Term>> {
    match &plan.exec {
        ExecPlan::Yannakakis(yp) => run_yannakakis(yp, db, ctx),
        ExecPlan::Indexed(ip) => run_indexed(ip, db, ctx),
    }
}

/// An intermediate relation over query variables.  Tuples are packed rows of
/// dictionary codes; nothing in the Yannakakis phases ever compares a
/// [`Term`].
#[derive(Debug, Clone)]
struct Table {
    vars: Vec<Symbol>,
    tuples: FxHashSet<Vec<u32>>,
}

impl Table {
    /// An empty table over `shape`'s distinct variables.
    fn empty(shape: &NodeShape) -> Table {
        Table {
            vars: shape.vars.clone(),
            tuples: FxHashSet::default(),
        }
    }

    /// The relation holding exactly the empty tuple (join identity).
    fn unit() -> Table {
        let mut tuples = FxHashSet::default();
        tuples.insert(Vec::new());
        Table {
            vars: Vec::new(),
            tuples,
        }
    }

    fn positions_of(&self, vars: &[Symbol]) -> Vec<usize> {
        vars.iter()
            .map(|v| {
                self.vars
                    .iter()
                    .position(|u| u == v)
                    .expect("variable present in table")
            })
            .collect()
    }

    /// Projects onto `keep` (must be a subset of the table's variables),
    /// deduplicating.
    fn project(&self, keep: &[Symbol]) -> Table {
        let positions = self.positions_of(keep);
        Table {
            vars: keep.to_vec(),
            tuples: self
                .tuples
                .iter()
                .map(|t| positions.iter().map(|p| t[*p]).collect())
                .collect(),
        }
    }

    /// Hash semijoin: keeps only tuples agreeing with some tuple of `other`
    /// on the shared variables.  With no shared variables this is "keep all
    /// iff `other` is non-empty".  Single-column join keys (the common case
    /// on graph-shaped queries) probe a `u32` set with no per-tuple
    /// allocation.  Large tables are filtered in parallel chunks when the
    /// context allows it.
    fn semijoin(&mut self, other: &Table, ctx: &ExecContext) {
        let shared: Vec<Symbol> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        if shared.is_empty() {
            if other.tuples.is_empty() {
                self.tuples.clear();
            }
            return;
        }
        let my_pos = self.positions_of(&shared);
        let other_pos = other.positions_of(&shared);
        if let ([mp], [op]) = (my_pos.as_slice(), other_pos.as_slice()) {
            let (mp, op) = (*mp, *op);
            let keys: FxHashSet<u32> = other.tuples.iter().map(|t| t[op]).collect();
            self.retain_tuples(ctx, |t| keys.contains(&t[mp]));
        } else {
            let keys: FxHashSet<Vec<u32>> = other
                .tuples
                .iter()
                .map(|t| other_pos.iter().map(|p| t[*p]).collect())
                .collect();
            self.retain_tuples(ctx, |t| {
                keys.contains(&my_pos.iter().map(|p| t[*p]).collect::<Vec<_>>())
            });
        }
    }

    /// Keeps exactly the tuples `survives` accepts, chunked into morsels
    /// across the worker pool for large tables when the context allows it.
    fn retain_tuples<F: Fn(&Vec<u32>) -> bool + Sync>(&mut self, ctx: &ExecContext, survives: F) {
        let rows = self.tuples.len();
        let morsel_rows = ctx.morsel_rows();
        // Morsel count is row-derived, not thread-derived: a sweep goes
        // parallel only when it yields at least two full morsels, and then
        // splits into roughly `rows / morsel_rows` chunks (clamped to a
        // small multiple of the pool width so dispatch overhead stays
        // bounded).  Under the old `parallelism * 4` sizing a 512-row
        // table at parallelism 8 produced 16-row chunks whose dispatch
        // cost exceeded the scan; it now stays serial.
        if ctx.parallel_enabled() && rows >= ctx.min_parallel_rows.max(2) && rows >= 2 * morsel_rows
        {
            // Workers return keep-masks (chunks partition `drained` in
            // order, and region results come back in morsel order), so the
            // surviving tuples are moved, never cloned.
            let drained: Vec<Vec<u32>> = self.tuples.drain().collect();
            let chunk_count = (rows / morsel_rows).clamp(2, ctx.parallelism * 4);
            let chunk_len = drained.len().div_ceil(chunk_count);
            let chunks: Vec<&[Vec<u32>]> = drained.chunks(chunk_len).collect();
            let masks = ctx.run_region(&chunks, |chunk| {
                chunk.iter().map(&survives).collect::<Vec<bool>>()
            });
            ctx.note_parallel(chunks.len());
            self.tuples = drained
                .into_iter()
                .zip(masks.into_iter().flatten())
                .filter_map(|(tuple, keep)| keep.then_some(tuple))
                .collect();
        } else {
            self.tuples.retain(survives);
        }
    }

    /// Hash join on the shared variables; the output's variables are
    /// `self.vars` followed by `other`'s non-shared variables.  With no
    /// shared variables this is the cross product.
    fn join(&self, other: &Table) -> Table {
        self.join_onto(other, None)
    }

    /// [`Table::join`] with the projection fused into the emit: with
    /// `keep` set, output tuples are gathered directly onto those variables
    /// (a subset of the joined variables), so an output-bounded join never
    /// materializes the wide intermediate only to project it away.
    /// Single-column join keys index a `u32` map with no per-key
    /// allocation.
    fn join_onto(&self, other: &Table, keep: Option<&[Symbol]>) -> Table {
        let shared: Vec<Symbol> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        let my_pos = self.positions_of(&shared);
        let other_pos = other.positions_of(&shared);
        let extra_pos: Vec<usize> = (0..other.vars.len())
            .filter(|p| !other_pos.contains(p))
            .collect();

        // The emitted columns: each is a side (false = self, true = other)
        // and a position within that side's tuple.
        let (vars, out_cols): (Vec<Symbol>, Vec<(bool, usize)>) = match keep {
            None => {
                let mut vars = self.vars.clone();
                vars.extend(extra_pos.iter().map(|p| other.vars[*p]));
                let mut cols: Vec<(bool, usize)> =
                    (0..self.vars.len()).map(|p| (false, p)).collect();
                cols.extend(extra_pos.iter().map(|p| (true, *p)));
                (vars, cols)
            }
            Some(keep) => {
                let cols = keep
                    .iter()
                    .map(|v| {
                        self.vars
                            .iter()
                            .position(|u| u == v)
                            .map(|p| (false, p))
                            .or_else(|| other.vars.iter().position(|u| u == v).map(|p| (true, p)))
                            .expect("carry variable present in the joined table")
                    })
                    .collect();
                (keep.to_vec(), cols)
            }
        };

        // Index the smaller operand's tuples by join key and probe with the
        // larger.
        let emit = |mine: &Vec<u32>, theirs: &Vec<u32>| -> Vec<u32> {
            out_cols
                .iter()
                .map(|&(from_other, p)| if from_other { theirs[p] } else { mine[p] })
                .collect()
        };
        let mut tuples = FxHashSet::default();
        let (build, probe, build_pos, probe_pos, build_is_self) =
            if self.tuples.len() <= other.tuples.len() {
                (&self.tuples, &other.tuples, &my_pos, &other_pos, true)
            } else {
                (&other.tuples, &self.tuples, &other_pos, &my_pos, false)
            };
        let pair = |b: &Vec<u32>, p: &Vec<u32>| {
            if build_is_self {
                emit(b, p)
            } else {
                emit(p, b)
            }
        };
        if let ([bp], [pp]) = (build_pos.as_slice(), probe_pos.as_slice()) {
            let (bp, pp) = (*bp, *pp);
            let mut by_key: FxHashMap<u32, Vec<&Vec<u32>>> = FxHashMap::default();
            for t in build {
                by_key.entry(t[bp]).or_default().push(t);
            }
            for t in probe {
                if let Some(matches) = by_key.get(&t[pp]) {
                    for m in matches {
                        tuples.insert(pair(m, t));
                    }
                }
            }
        } else {
            let mut by_key: FxHashMap<Vec<u32>, Vec<&Vec<u32>>> = FxHashMap::default();
            for t in build {
                let key: Vec<u32> = build_pos.iter().map(|p| t[*p]).collect();
                by_key.entry(key).or_default().push(t);
            }
            for t in probe {
                let key: Vec<u32> = probe_pos.iter().map(|p| t[*p]).collect();
                if let Some(matches) = by_key.get(&key) {
                    for m in matches {
                        tuples.insert(pair(m, t));
                    }
                }
            }
        }
        Table { vars, tuples }
    }

    /// [`Table::project`] by value: the identity projection (same variables,
    /// same order) is a move, not a copy.
    fn into_projected(self, keep: &[Symbol]) -> Table {
        if keep == self.vars {
            self
        } else {
            self.project(keep)
        }
    }
}

/// A [`NodeShape`] with its constant key pushed through the dictionary: the
/// executor's decode-free admission test over columnar rows.
///
/// `const_codes` is `None` when some rigid term of the atom was never
/// encoded — then no stored tuple can match and the node's match set is
/// empty without touching the relation (the dictionary's `None` is a
/// process-wide absence guarantee).
struct CodeShape<'a> {
    shape: &'a NodeShape,
    const_codes: Option<Vec<u32>>,
}

impl<'a> CodeShape<'a> {
    fn of(shape: &'a NodeShape) -> CodeShape<'a> {
        let const_codes = shape
            .const_key
            .iter()
            .map(|t| dict::lookup(*t))
            .collect::<Option<Vec<u32>>>();
        CodeShape { shape, const_codes }
    }

    /// The match-set projection of row `row` of `cols` (its codes at the
    /// distinct variables' first occurrences) when the row passes the
    /// shape's repeated-variable and constant filters, `None` otherwise.
    /// The one definition of "this relation row matches this atom", shared
    /// by the full scan, per-shard and incremental (delta) paths so they
    /// can never disagree.
    #[inline]
    fn admit_row(&self, cols: &[&[u32]], row: usize) -> Option<Vec<u32>> {
        let codes = self.const_codes.as_ref()?;
        let shape = self.shape;
        let consistent = shape
            .eq_checks
            .iter()
            .all(|(a, b)| cols[*a][row] == cols[*b][row]);
        let constants = shape
            .const_positions
            .iter()
            .zip(codes)
            .all(|(p, k)| cols[*p][row] == *k);
        (consistent && constants).then(|| shape.var_first.iter().map(|p| cols[*p][row]).collect())
    }
}

/// The column slices of `rel`, gathered once per sweep so the row loop is
/// pure slice indexing.
fn columns_of(rel: &Relation) -> Vec<&[u32]> {
    (0..rel.arity()).map(|p| rel.column(p)).collect()
}

/// Computes a node's match set: the projection onto its distinct variables of
/// the relation tuples matching the atom's constants and repeated variables.
/// Constant positions are served by the relation's sidecar index (one
/// constant) or a snapshot index (several) when available; the fallback is a
/// keep-mask sweep over the column slices.
fn node_matches(
    shape: &NodeShape,
    predicate: Symbol,
    arity: usize,
    db: &Instance,
    indexes: &PlanIndexes,
) -> Table {
    let mut table = Table::empty(shape);
    let Some(rel) = db.relation(predicate) else {
        return table;
    };
    if rel.arity() != arity {
        return table;
    }
    let code_shape = CodeShape::of(shape);
    let Some(const_codes) = code_shape.const_codes.as_deref() else {
        return table; // a rigid term the dictionary never saw: no match
    };
    let cols = columns_of(rel);
    if shape.const_positions.is_empty() {
        table.tuples.reserve(rel.len());
    }
    let mut admit = |row: usize| {
        if let Some(projected) = code_shape.admit_row(&cols, row) {
            table.tuples.insert(projected);
        }
    };
    match shape.const_positions.len() {
        0 => {
            for row in 0..rel.len() {
                admit(row);
            }
        }
        // One constant: the storage layer's sidecar index serves it
        // incrementally — no cached copy needed.
        1 => {
            for &row in rel.rows_with_code(shape.const_positions[0], const_codes[0]) {
                admit(row as usize);
            }
        }
        _ => match indexes.get(&(predicate, shape.const_positions.clone())) {
            Some(index) => {
                for &row in index.rows_codes(const_codes) {
                    admit(row as usize);
                }
            }
            // No snapshot index (e.g. the cache could not build one):
            // degrade to a keep-mask sweep.
            None => {
                for row in 0..rel.len() {
                    admit(row);
                }
            }
        },
    }
    table
}

/// The shard half of [`node_matches`]: sweep one hash shard of a
/// constant-free node's relation, projecting consistent rows.
fn node_matches_shard(shape: &NodeShape, shard: &Relation) -> Table {
    let mut table = Table::empty(shape);
    let code_shape = CodeShape::of(shape);
    if code_shape.const_codes.is_none() {
        return table;
    }
    table.tuples.reserve(shard.len());
    let cols = columns_of(shard);
    for row in 0..shard.len() {
        if let Some(projected) = code_shape.admit_row(&cols, row) {
            table.tuples.insert(projected);
        }
    }
    table
}

/// One unit of phase-1 work: a whole node, or one shard of a node whose
/// relation was decomposed for parallel scanning.
enum MatchTask<'a> {
    Whole(usize),
    Shard(usize, &'a Relation),
}

/// Whether nodes `i` and `j` provably have identical match-set *tuples*:
/// same relation, and the same structural shape (projection positions,
/// repeated-variable checks, constant filters).  Variable *names* may
/// differ — the star query's `E(c,l1), E(c,l2), E(c,l3)` shares one scan
/// three ways.
fn same_match_set(plan: &YannakakisPlan, i: usize, j: usize) -> bool {
    let (a, b) = (&plan.shapes[i], &plan.shapes[j]);
    plan.tree.atoms[i].predicate == plan.tree.atoms[j].predicate
        && a.var_first == b.var_first
        && a.eq_checks == b.eq_checks
        && a.const_positions == b.const_positions
        && a.const_key == b.const_key
}

/// Phase 1 of Yannakakis: one match-set [`Table`] per join-tree node,
/// computed in parallel per `(node, shard)` when the context allows it and
/// merged by hash-set union.  Structurally identical nodes (common in
/// self-join queries) are scanned once and shared by tuple-set clone.
fn match_tables(plan: &YannakakisPlan, db: &Instance, ctx: &ExecContext) -> Vec<Table> {
    let n = plan.tree.len();
    // leaders[i] == i for the first node of each structural class; later
    // members copy the leader's tuples instead of rescanning.
    let leaders: Vec<usize> = (0..n)
        .map(|i| (0..i).find(|&j| same_match_set(plan, i, j)).unwrap_or(i))
        .collect();
    let share_duplicates = |tables: &mut Vec<Table>| {
        for i in 0..n {
            if leaders[i] != i {
                let shared = tables[leaders[i]].tuples.clone();
                tables[i].tuples = shared;
            }
        }
    };
    let serial = || -> Vec<Table> {
        let mut tables: Vec<Table> = plan.shapes.iter().map(Table::empty).collect();
        for i in 0..n {
            if leaders[i] != i {
                continue;
            }
            let atom = &plan.tree.atoms[i];
            tables[i] = node_matches(
                &plan.shapes[i],
                atom.predicate,
                atom.arity(),
                db,
                &ctx.indexes,
            );
        }
        share_duplicates(&mut tables);
        tables
    };
    if !ctx.parallel_enabled() {
        return serial();
    }
    let mut tasks: Vec<MatchTask<'_>> = Vec::with_capacity(n);
    let mut shard_tasks = 0usize;
    for (i, &leader) in leaders.iter().enumerate() {
        if leader != i {
            continue;
        }
        let atom = &plan.tree.atoms[i];
        let shard_set = if plan.shapes[i].const_positions.is_empty() {
            ctx.shards_for(db, atom)
        } else {
            None
        };
        match shard_set {
            Some(set) => {
                for shard in set.shards() {
                    tasks.push(MatchTask::Shard(i, shard));
                    shard_tasks += 1;
                }
            }
            None => tasks.push(MatchTask::Whole(i)),
        }
    }
    // Honour the size gate: with no relation decomposed (everything under
    // `min_parallel_rows`, or nothing scanned), the run stays serial rather
    // than paying morsel dispatch for per-node tasks over small data.
    if shard_tasks == 0 {
        return serial();
    }
    let partials = ctx.run_region(&tasks, |task| match task {
        MatchTask::Whole(i) => {
            let atom = &plan.tree.atoms[*i];
            (
                *i,
                node_matches(
                    &plan.shapes[*i],
                    atom.predicate,
                    atom.arity(),
                    db,
                    &ctx.indexes,
                ),
            )
        }
        MatchTask::Shard(i, shard) => (*i, node_matches_shard(&plan.shapes[*i], shard)),
    });
    ctx.note_parallel(shard_tasks);
    let mut tables: Vec<Table> = plan.shapes.iter().map(Table::empty).collect();
    for (i, partial) in partials {
        tables[i].tuples.extend(partial.tuples);
    }
    share_duplicates(&mut tables);
    tables
}

fn run_yannakakis(plan: &YannakakisPlan, db: &Instance, ctx: &ExecContext) -> BTreeSet<Vec<Term>> {
    if plan.tree.is_empty() {
        // The empty conjunction holds vacuously, with the empty answer tuple.
        return BTreeSet::from([Vec::new()]);
    }
    // Phase 1: match sets (per shard when parallel)…
    let tables = match_tables(plan, db, ctx);
    ctx.mark(Phase::MatchSets);
    // …then the semijoin sweeps and the join-back-up.
    yannakakis_phases(plan, tables, ctx)
}

/// Reports every node's rows in/out to an attached probe: match-set sizes
/// entering the semijoin sweeps vs the sizes in `tables` now.  A no-op
/// (including the display formatting) on untraced runs.
fn note_node_rows(plan: &YannakakisPlan, rows_in: &[usize], tables: &[Table], ctx: &ExecContext) {
    for (i, atom) in plan.tree.atoms.iter().enumerate() {
        ctx.note_node(atom.to_string(), rows_in[i], tables[i].tuples.len());
    }
}

/// Phases 2–3 of Yannakakis over already-computed per-node tables: the
/// upward/downward semijoin sweeps and the output-bounded join-back-up.
/// Shared between the full path ([`run_yannakakis`], whose tables are the
/// complete match sets) and the incremental path ([`execute_delta`], whose
/// tables are restricted to tuples joining a relation delta).  Answers are
/// decoded from codes to terms here, at the very end — the only
/// term-materialization point of the whole pipeline.
fn yannakakis_phases(
    plan: &YannakakisPlan,
    mut tables: Vec<Table>,
    ctx: &ExecContext,
) -> BTreeSet<Vec<Term>> {
    let n = plan.tree.len();
    let mut answers = BTreeSet::new();
    // Match-set sizes entering the sweeps, for the trace's per-node rows.
    // Collected only under a probe so untraced runs pay one branch.
    let rows_in: Vec<usize> = if ctx.probing() {
        tables.iter().map(|t| t.tuples.len()).collect()
    } else {
        Vec::new()
    };

    // Phase 2a: upward semijoin sweep (children into parents, leaves first).
    for &node in plan.order.iter().rev() {
        for &child in &plan.children[node] {
            let child_table = std::mem::replace(&mut tables[child], Table::unit());
            tables[node].semijoin(&child_table, ctx);
            tables[child] = child_table;
        }
        if tables[node].tuples.is_empty() {
            ctx.mark(Phase::SemijoinUp);
            if ctx.probing() {
                note_node_rows(plan, &rows_in, &tables, ctx);
            }
            return answers; // no homomorphism covers this node
        }
    }
    ctx.mark(Phase::SemijoinUp);
    if plan.query.head.is_empty() {
        if ctx.probing() {
            note_node_rows(plan, &rows_in, &tables, ctx);
        }
        answers.insert(Vec::new());
        return answers;
    }

    // Phase 2b: downward sweep (parents into children, roots first).
    for &node in &plan.order {
        if let Some(parent) = plan.tree.parent[node] {
            let parent_table = std::mem::replace(&mut tables[parent], Table::unit());
            tables[node].semijoin(&parent_table, ctx);
            tables[parent] = parent_table;
        }
    }
    ctx.mark(Phase::SemijoinDown);
    if ctx.probing() {
        note_node_rows(plan, &rows_in, &tables, ctx);
    }

    // Phase 3: bottom-up hash join, projecting each subtree onto its carry
    // set as it is joined — fused into the last join's emit, so the wide
    // intermediate is never materialized.  Joins follow the tree structure
    // and stay output-bounded, so this phase is kept serial.
    let mut joined: Vec<Option<Table>> = vec![None; n];
    for &node in plan.order.iter().rev() {
        let kids = &plan.children[node];
        let mut t = std::mem::replace(&mut tables[node], Table::unit());
        for (i, &child) in kids.iter().enumerate() {
            let child_table = joined[child].take().expect("children joined first");
            let keep = (i + 1 == kids.len()).then_some(plan.carry[node].as_slice());
            t = t.join_onto(&child_table, keep);
        }
        joined[node] = Some(if kids.is_empty() {
            t.into_projected(&plan.carry[node])
        } else {
            t
        });
    }
    // Chain the root tables; a single root (the connected-query case) moves
    // straight through.
    let mut acc: Option<Table> = None;
    for root in plan.tree.roots() {
        let root_table = joined[root].take().expect("roots joined last");
        acc = Some(match acc {
            None => root_table,
            Some(done) => done.join(&root_table),
        });
    }
    let acc = acc.expect("non-empty tree has a root");
    ctx.mark(Phase::JoinBack);

    // Materialize answers in head order (head variables may repeat),
    // decoding each projected code row under one dictionary guard.
    let head_pos = acc.positions_of(&plan.query.head);
    let decoder = dict::decoder();
    for t in &acc.tuples {
        answers.insert(
            head_pos
                .iter()
                .map(|p| decoder.decode(t[*p]))
                .collect::<Vec<Term>>(),
        );
    }
    ctx.mark(Phase::Decode);
    answers
}

/// The multi-column index keys the **incremental** path probes when walking
/// join-tree edges: for every (parent, child) edge and both directions, the
/// target atom's first-occurrence positions of the variables shared with the
/// source atom.  Single-column keys are served by the storage layer's
/// incremental sidecar indexes and need no cache entry.  Empty for
/// non-Yannakakis plans (the fallback rung recomputes in full).
pub(crate) fn delta_edge_indexes(plan: &Plan) -> Vec<(Symbol, Vec<usize>)> {
    let ExecPlan::Yannakakis(yp) = &plan.exec else {
        return Vec::new();
    };
    let mut out: Vec<(Symbol, Vec<usize>)> = Vec::new();
    for child in 0..yp.tree.len() {
        let Some(parent) = yp.tree.parent[child] else {
            continue;
        };
        for (source, target) in [(parent, child), (child, parent)] {
            let positions = shared_positions(&yp.shapes[source].vars, &yp.shapes[target])
                .into_iter()
                .map(|(pos, _)| pos)
                .collect::<Vec<usize>>();
            let key = (yp.tree.atoms[target].predicate, positions);
            if key.1.len() > 1 && !out.contains(&key) {
                out.push(key);
            }
        }
    }
    out
}

/// The join key between two adjacent nodes, from the target's side: for
/// every target variable also present in `source_vars`, the target atom's
/// first-occurrence position, ascending — paired with the variable so
/// callers can project the source table in matching order.
fn shared_positions(source_vars: &[Symbol], target: &NodeShape) -> Vec<(usize, Symbol)> {
    let mut shared: Vec<(usize, Symbol)> = target
        .vars
        .iter()
        .zip(&target.var_first)
        .filter(|(v, _)| source_vars.contains(v))
        .map(|(v, pos)| (*pos, *v))
        .collect();
    shared.sort_unstable();
    shared
}

/// The tuples of `target`'s relation that join some tuple of the already
/// restricted `frontier` table on the shared variables, as a match-set
/// [`Table`] (shape filters applied, projected onto distinct variables).
///
/// Lookups go through the narrowest structure available: the relation's
/// sidecar index for one shared position, a cached multi-column
/// [`crate::JoinIndex`] from the snapshot when present, and a
/// sparsest-sidecar-driven [`Relation::select_rows`] otherwise — all keyed
/// by the codes the frontier already carries.  With no shared variables the
/// restriction is vacuous and the full match set is returned.
fn restrict_via_edge(
    frontier: &Table,
    shape: &NodeShape,
    predicate: Symbol,
    arity: usize,
    db: &Instance,
    indexes: &PlanIndexes,
) -> Table {
    let mut table = Table::empty(shape);
    let Some(rel) = db.relation(predicate) else {
        return table;
    };
    if rel.arity() != arity {
        return table;
    }
    let shared = shared_positions(&frontier.vars, shape);
    if shared.is_empty() {
        // Disconnected neighbour (no join key): every tuple participates.
        return node_matches(shape, predicate, arity, db, indexes);
    }
    let code_shape = CodeShape::of(shape);
    if code_shape.const_codes.is_none() {
        return table;
    }
    let cols = columns_of(rel);
    let positions: Vec<usize> = shared.iter().map(|(pos, _)| *pos).collect();
    let shared_vars: Vec<Symbol> = shared.iter().map(|(_, v)| *v).collect();
    let key_pos = frontier.positions_of(&shared_vars);
    let keys: FxHashSet<Vec<u32>> = frontier
        .tuples
        .iter()
        .map(|t| key_pos.iter().map(|p| t[*p]).collect())
        .collect();

    let mut add_row = |row: usize| {
        if let Some(projected) = code_shape.admit_row(&cols, row) {
            table.tuples.insert(projected);
        }
    };
    let cached = if positions.len() > 1 {
        indexes.get(&(predicate, positions.clone()))
    } else {
        None
    };
    for key in keys {
        if positions.len() == 1 {
            for &row in rel.rows_with_code(positions[0], key[0]) {
                add_row(row as usize);
            }
        } else if let Some(index) = cached {
            for &row in index.rows_codes(&key) {
                add_row(row as usize);
            }
        } else {
            // No cached multi-column index: drive the lookup through the
            // sparsest sidecar and verify the rest against the columns.
            let bound: Vec<(usize, u32)> =
                positions.iter().copied().zip(key.iter().copied()).collect();
            for row in rel.select_rows(&bound) {
                add_row(row as usize);
            }
        }
    }
    table
}

/// Incremental Yannakakis: the answers `plan` gains when the relations in
/// `watermarks` grow past the given row counts (their append-only delta).
/// Returns `None` for non-Yannakakis plans — the fallback rung has no join
/// tree to push deltas through, so callers recompute in full.
///
/// For each join-tree node whose relation grew, the node's match set is
/// computed from the **delta rows only** (a tail sweep over the column
/// buffers) and pushed outward through the tree: each neighbour's table is
/// restricted to tuples joining the frontier (index lookups, not scans), so
/// the per-refresh work is proportional to the delta and its join fan-out,
/// not to the database.  The restricted tables then run the ordinary
/// semijoin sweeps and join-back-up, and contributions from all dirty nodes
/// are unioned.
///
/// Conjunctive queries are monotone, so appended facts can only **add**
/// answers; the union of the returned set into a previously materialized
/// answer set is exactly the new answer set.  Completeness: any new
/// homomorphism uses a delta tuple at some node `i`; walking the join tree
/// outward from `i` over shared-variable lookups reaches a superset of
/// every tuple that joins transitively with the delta (connectedness of
/// join trees), and the sweeps then prune that superset exactly.
pub(crate) fn execute_delta(
    plan: &Plan,
    db: &Instance,
    watermarks: &HashMap<Symbol, usize>,
    ctx: &ExecContext,
) -> Option<BTreeSet<Vec<Term>>> {
    let ExecPlan::Yannakakis(yp) = &plan.exec else {
        return None;
    };
    let n = yp.tree.len();
    let mut out = BTreeSet::new();
    if n == 0 {
        // The empty conjunction never changes; its (vacuous) answer was
        // materialized up front.
        return Some(out);
    }
    // Undirected adjacency over the join tree.
    let mut adjacent: Vec<Vec<usize>> = vec![Vec::new(); n];
    for child in 0..n {
        if let Some(parent) = yp.tree.parent[child] {
            adjacent[child].push(parent);
            adjacent[parent].push(child);
        }
    }

    for dirty in 0..n {
        let atom = &yp.tree.atoms[dirty];
        let Some(&from_row) = watermarks.get(&atom.predicate) else {
            continue;
        };
        let Some(rel) = db.relation(atom.predicate) else {
            continue;
        };
        if rel.arity() != atom.arity() || from_row >= rel.len() {
            continue;
        }
        // The dirty node's table: its match set over the delta rows only.
        let shape = &yp.shapes[dirty];
        let mut delta_table = Table::empty(shape);
        let code_shape = CodeShape::of(shape);
        if code_shape.const_codes.is_some() {
            let cols = columns_of(rel);
            for row in from_row..rel.len() {
                if let Some(projected) = code_shape.admit_row(&cols, row) {
                    delta_table.tuples.insert(projected);
                }
            }
        }
        if delta_table.tuples.is_empty() {
            continue; // every appended row was filtered out by the shape
        }

        // Restrict the rest of the tree to tuples joining the delta: BFS
        // outward from the dirty node, each step an index lookup keyed by
        // the frontier's projection onto the shared variables.
        let mut tables: Vec<Option<Table>> = vec![None; n];
        tables[dirty] = Some(delta_table);
        let mut queue = std::collections::VecDeque::from([dirty]);
        let mut contribution_possible = true;
        'bfs: while let Some(node) = queue.pop_front() {
            for &next in &adjacent[node] {
                if tables[next].is_some() {
                    continue;
                }
                let next_atom = &yp.tree.atoms[next];
                let restricted = restrict_via_edge(
                    tables[node].as_ref().expect("visited nodes have tables"),
                    &yp.shapes[next],
                    next_atom.predicate,
                    next_atom.arity(),
                    db,
                    &ctx.indexes,
                );
                if restricted.tuples.is_empty() {
                    // Nothing joins the delta along this edge: this dirty
                    // node contributes no answers.
                    contribution_possible = false;
                    break 'bfs;
                }
                tables[next] = Some(restricted);
                queue.push_back(next);
            }
        }
        if !contribution_possible {
            continue;
        }
        // Join-tree components not reachable from the dirty node are
        // unrestricted by the delta: they contribute their full match sets
        // (the cross-product semantics of a disconnected query).
        let tables: Vec<Table> = tables
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                t.unwrap_or_else(|| {
                    let atom = &yp.tree.atoms[i];
                    node_matches(
                        &yp.shapes[i],
                        atom.predicate,
                        atom.arity(),
                        db,
                        &ctx.indexes,
                    )
                })
            })
            .collect();
        out.extend(yannakakis_phases(yp, tables, ctx));
    }
    Some(out)
}

fn run_indexed(plan: &IndexedPlan, db: &Instance, ctx: &ExecContext) -> BTreeSet<Vec<Term>> {
    // Resolve each step's snapshot index once, so the recursion below does no
    // hashing on the (predicate, columns) key per visited node.
    let step_indexes: Vec<Option<&Arc<crate::index::JoinIndex>>> = plan
        .order
        .iter()
        .enumerate()
        .map(|(step, &atom_idx)| {
            let bp = &plan.bound_positions[step];
            if bp.len() > 1 {
                ctx.indexes
                    .get(&(plan.query.body[atom_idx].predicate, bp.clone()))
            } else {
                None
            }
        })
        .collect();

    // Parallel root: when the first step is an unbound scan and its relation
    // has a cached shard decomposition, seed one backtracking morsel per
    // shard and merge the per-shard answer sets.
    if ctx.parallel_enabled() && !plan.order.is_empty() && plan.bound_positions[0].is_empty() {
        let atom = &plan.query.body[plan.order[0]];
        if let Some(set) = ctx.shards_for(db, atom) {
            let shards = set.shards();
            let partials = ctx.run_region(shards, |shard| {
                let mut local = BTreeSet::new();
                let mut state = Substitution::new();
                for tuple in shard.iter() {
                    try_match(plan, db, &step_indexes, 0, &tuple, &mut state, &mut local);
                }
                local
            });
            ctx.note_parallel(shards.len());
            let mut answers = BTreeSet::new();
            for partial in partials {
                answers.extend(partial);
            }
            ctx.mark(Phase::Search);
            return answers;
        }
    }

    let mut answers = BTreeSet::new();
    let mut state = Substitution::new();
    indexed_step(plan, db, &step_indexes, 0, &mut state, &mut answers);
    ctx.mark(Phase::Search);
    answers
}

/// Tries to extend `state` with `tuple` at step `depth`; on success recurses
/// into the next step.  Shared by the serial walk and the per-shard workers.
fn try_match(
    plan: &IndexedPlan,
    db: &Instance,
    step_indexes: &[Option<&Arc<crate::index::JoinIndex>>],
    depth: usize,
    tuple: &[Term],
    state: &mut Substitution,
    answers: &mut BTreeSet<Vec<Term>>,
) {
    let atom = &plan.query.body[plan.order[depth]];
    let target = sac_common::Atom::new(atom.predicate, tuple.to_vec());
    let mut extended = state.clone();
    if extended.match_atom(atom, &target) {
        std::mem::swap(state, &mut extended);
        indexed_step(plan, db, step_indexes, depth + 1, state, answers);
        std::mem::swap(state, &mut extended);
    }
}

fn indexed_step(
    plan: &IndexedPlan,
    db: &Instance,
    step_indexes: &[Option<&Arc<crate::index::JoinIndex>>],
    depth: usize,
    state: &mut Substitution,
    answers: &mut BTreeSet<Vec<Term>>,
) {
    if depth == plan.order.len() {
        let tuple: Vec<Term> = plan
            .query
            .head
            .iter()
            .map(|v| state.apply(Term::Variable(*v)))
            .collect();
        if tuple.iter().all(|t| !t.is_variable()) {
            answers.insert(tuple);
        }
        return;
    }
    let atom_idx = plan.order[depth];
    let atom = &plan.query.body[atom_idx];
    let Some(rel) = db.relation(atom.predicate) else {
        return;
    };
    if rel.arity() != atom.arity() {
        return;
    }
    let bp = &plan.bound_positions[depth];

    if bp.is_empty() {
        for tuple in rel.iter() {
            try_match(plan, db, step_indexes, depth, &tuple, state, answers);
        }
        return;
    }
    let key: Vec<Term> = bp.iter().map(|&pos| state.apply(atom.args[pos])).collect();
    if key.iter().any(|t| t.is_variable()) {
        // The planner guarantees bound positions are bound; fall back to a
        // filtered scan if that invariant is ever violated.
        for tuple in scan_candidates(rel, atom, state) {
            try_match(plan, db, step_indexes, depth, &tuple, state, answers);
        }
        return;
    }
    if bp.len() == 1 {
        // Single bound column: the relation's sidecar index serves the
        // lookup directly.
        for &row in rel.rows_with(bp[0], key[0]) {
            let tuple = rel.row(row as usize).expect("indexed row exists");
            try_match(plan, db, step_indexes, depth, &tuple, state, answers);
        }
        return;
    }
    match step_indexes[depth] {
        Some(index) => {
            for &row in index.rows(&key) {
                let tuple = rel.row(row as usize).expect("indexed row exists");
                try_match(plan, db, step_indexes, depth, &tuple, state, answers);
            }
        }
        None => {
            for tuple in scan_candidates(rel, atom, state) {
                try_match(plan, db, step_indexes, depth, &tuple, state, answers);
            }
        }
    }
}

/// Fallback candidate enumeration through the relation's sidecar indexes
/// (used only if a snapshot multi-column index is unavailable).
fn scan_candidates(
    rel: &Relation,
    atom: &sac_common::Atom,
    state: &Substitution,
) -> Vec<Vec<Term>> {
    let bound: Vec<(usize, Term)> = atom
        .args
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            let image = state.apply(*t);
            (!image.is_variable()).then_some((i, image))
        })
        .collect();
    rel.select(&bound).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::EngineConfig;
    use crate::index::IndexCache;
    use crate::plan::plan_query;
    use sac_common::{atom, intern, Atom};
    use sac_query::{evaluate, ConjunctiveQuery};

    /// A throwaway pool for parallel test contexts (`None` keeps the
    /// context serial, mirroring what the database does at parallelism 1).
    fn pooled(parallelism: usize) -> Option<Arc<WorkerPool>> {
        (parallelism > 1).then(|| Arc::new(WorkerPool::new(parallelism)))
    }

    fn run_at(q: &ConjunctiveQuery, db: &Instance, parallelism: usize) -> BTreeSet<Vec<Term>> {
        let plan = plan_query(q, &[], db, &EngineConfig::default());
        let mut cache = IndexCache::new(db);
        let indexes = cache.snapshot(db, &required_indexes(&plan));
        let shards = cache.snapshot_shards(db, &required_shards(&plan), parallelism, 0);
        let ctx = ExecContext::new(indexes, shards, parallelism, 0).with_pool(pooled(parallelism));
        execute_with(&plan, db, &ctx)
    }

    fn run(q: &ConjunctiveQuery, db: &Instance) -> BTreeSet<Vec<Term>> {
        run_at(q, db, 1)
    }

    fn music_db() -> Instance {
        Instance::from_atoms(vec![
            atom!("Interest", cst "alice", cst "jazz"),
            atom!("Interest", cst "bob", cst "rock"),
            atom!("Class", cst "kind_of_blue", cst "jazz"),
            atom!("Class", cst "nevermind", cst "rock"),
            atom!("Owns", cst "alice", cst "kind_of_blue"),
            atom!("Owns", cst "bob", cst "kind_of_blue"),
        ])
        .unwrap()
    }

    #[test]
    fn acyclic_query_matches_naive_evaluation() {
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let db = music_db();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn cyclic_query_matches_naive_evaluation() {
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap();
        let db = music_db();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn constants_in_atoms_probe_indexes() {
        let q = ConjunctiveQuery::new(
            vec![intern("y")],
            vec![
                atom!("Interest", cst "alice", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let db = music_db();
        let res = run(&q, &db);
        assert_eq!(res, evaluate(&q, &db));
        assert_eq!(res.len(), 1);
        assert!(res.contains(&vec![Term::constant("kind_of_blue")]));
    }

    #[test]
    fn constants_unknown_to_the_dictionary_match_nothing() {
        // A constant no relation (in any test) ever stored: the dictionary
        // lookup fails and the match set short-circuits to empty without
        // touching the relation.
        let db = music_db();
        let q = ConjunctiveQuery::new(
            vec![intern("z")],
            vec![atom!("Interest", cst "exec_never_stored_anywhere", var "z")],
        )
        .unwrap();
        assert!(run(&q, &db).is_empty());
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn execution_degrades_to_scans_without_a_snapshot() {
        // Force the no-snapshot path: execute plans against an empty
        // context and check answers are still exact.
        let db = music_db();
        for q in [
            ConjunctiveQuery::new(
                vec![intern("y")],
                vec![
                    atom!("Owns", cst "alice", var "y"),
                    atom!("Class", var "y", cst "jazz"),
                ],
            )
            .unwrap(),
            ConjunctiveQuery::boolean(vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ])
            .unwrap(),
        ] {
            let plan = plan_query(&q, &[], &db, &EngineConfig::default());
            let ctx = ExecContext::serial(PlanIndexes::new());
            assert_eq!(execute_with(&plan, &db, &ctx), evaluate(&q, &db));
            // A parallel context with no shard snapshot also degrades
            // cleanly (serial scans, identical answers).
            let ctx =
                ExecContext::new(PlanIndexes::new(), PlanShards::new(), 4, 0).with_pool(pooled(4));
            assert_eq!(execute_with(&plan, &db, &ctx), evaluate(&q, &db));
        }
    }

    #[test]
    fn repeated_variables_within_atoms_are_honoured() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", cst "a"),
            atom!("R", cst "a", cst "b"),
        ])
        .unwrap();
        let q =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("R", var "x", var "x")]).unwrap();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn disconnected_queries_cross_product() {
        let db = Instance::from_atoms(vec![
            atom!("A", cst "1"),
            atom!("A", cst "2"),
            atom!("B", cst "x"),
        ])
        .unwrap();
        let q = ConjunctiveQuery::new(
            vec![intern("u"), intern("v")],
            vec![atom!("A", var "u"), atom!("B", var "v")],
        )
        .unwrap();
        assert_eq!(run(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn boolean_queries_and_empty_databases() {
        let q = ConjunctiveQuery::boolean(vec![atom!("Owns", var "x", var "y")]).unwrap();
        assert_eq!(run(&q, &music_db()).len(), 1);
        assert!(run(&q, &Instance::new()).is_empty());
        // The empty conjunction holds vacuously.
        let empty_q = ConjunctiveQuery::boolean(vec![]).unwrap();
        assert_eq!(run(&empty_q, &Instance::new()).len(), 1);
        // The same holds at every parallelism level.
        for par in [2, 4] {
            assert_eq!(run_at(&q, &music_db(), par).len(), 1);
            assert!(run_at(&q, &Instance::new(), par).is_empty());
            assert_eq!(run_at(&empty_q, &Instance::new(), par).len(), 1);
        }
    }

    #[test]
    fn repeated_head_variables_produce_repeated_columns() {
        let db = music_db();
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("x")],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap();
        let res = run(&q, &db);
        assert_eq!(res, evaluate(&q, &db));
        assert!(res.iter().all(|t| t[0] == t[1]));
    }

    #[test]
    fn dangling_tuples_are_filtered_by_the_semijoin_sweeps() {
        let db = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
            atom!("E", cst "x", cst "y"),
        ])
        .unwrap();
        let q = ConjunctiveQuery::new(
            vec![intern("u")],
            vec![atom!("E", var "u", var "v"), atom!("E", var "v", var "w")],
        )
        .unwrap();
        let res = run(&q, &db);
        assert_eq!(res.len(), 1);
        assert!(res.contains(&vec![Term::constant("a")]));
    }

    #[test]
    fn projection_stays_output_bounded_on_star_joins() {
        // A star with many rays per hub: the carry projection keeps the
        // intermediate tables at hub-cardinality instead of ray^rays.
        let mut db = Instance::new();
        for h in 0..3 {
            for l in 0..20 {
                db.insert(Atom::from_parts(
                    "E",
                    vec![
                        Term::constant(&format!("h{h}")),
                        Term::constant(&format!("l{h}_{l}")),
                    ],
                ))
                .unwrap();
            }
        }
        let q = ConjunctiveQuery::new(
            vec![intern("c")],
            vec![
                atom!("E", var "c", var "l1"),
                atom!("E", var "c", var "l2"),
                atom!("E", var "c", var "l3"),
            ],
        )
        .unwrap();
        let res = run(&q, &db);
        assert_eq!(res.len(), 3);
        assert_eq!(res, evaluate(&q, &db));
    }

    #[test]
    fn larger_agreement_sweep_on_random_style_graphs() {
        let db = sac_gen::random_graph_database(12, 40, 7);
        for q in [
            sac_gen::path_query(3),
            sac_gen::star_query(3),
            sac_gen::cycle_query(3),
            sac_gen::cycle_query(4),
            sac_gen::clique_query(3),
        ] {
            assert_eq!(run(&q, &db), evaluate(&q, &db), "disagreement on {q}");
        }
    }

    #[test]
    fn parallel_execution_agrees_with_serial_on_every_strategy() {
        let db = sac_gen::random_graph_database(14, 70, 19);
        for q in [
            sac_gen::path_query(3),   // acyclic → Yannakakis
            sac_gen::star_query(4),   // acyclic, shared hub
            sac_gen::cycle_query(3),  // cyclic core → indexed fallback
            sac_gen::clique_query(3), // cyclic core → indexed fallback
        ] {
            let serial = run_at(&q, &db, 1);
            for par in [2, 3, 4, 8] {
                assert_eq!(
                    run_at(&q, &db, par),
                    serial,
                    "parallelism {par} disagrees on {q}"
                );
            }
            assert_eq!(serial, evaluate(&q, &db), "serial disagrees on {q}");
        }
    }

    #[test]
    fn parallel_runs_record_shard_tasks_and_threads() {
        let db = sac_gen::random_graph_database(16, 80, 3);
        let q = sac_gen::path_query(3);
        let plan = plan_query(&q, &[], &db, &EngineConfig::default());
        let mut cache = IndexCache::new(&db);
        let indexes = cache.snapshot(&db, &required_indexes(&plan));
        let shards = cache.snapshot_shards(&db, &required_shards(&plan), 4, 0);
        assert!(!shards.is_empty(), "the path query scans E");
        let ctx = ExecContext::new(indexes, shards, 4, 0).with_pool(pooled(4));
        let answers = execute_with(&plan, &db, &ctx);
        assert_eq!(answers, evaluate(&q, &db));
        assert!(ctx.shard_tasks() >= 4, "per-shard match tasks ran");
        assert!(ctx.morsels_dispatched() >= 4, "morsels went to the pool");
        assert_eq!(
            ctx.threads_spawned(),
            3,
            "pool width is reported once, not accumulated per region"
        );
    }

    /// Delta oracle: materialize at `base`, append `appends`, push the
    /// delta, and check the union equals a from-scratch evaluation.
    fn check_delta(q: &ConjunctiveQuery, base: &Instance, appends: &[Atom], parallelism: usize) {
        let mut grown = base.clone();
        let cursor = grown.delta_cursor();
        let plan = plan_query(q, &[], &grown, &EngineConfig::default());
        let mut cache = IndexCache::new(&grown);
        let mut answers = {
            let indexes = cache.snapshot(&grown, &required_indexes(&plan));
            let ctx = ExecContext::new(indexes, PlanShards::new(), parallelism, 0)
                .with_pool(pooled(parallelism));
            execute_with(&plan, &grown, &ctx)
        };
        for atom in appends {
            grown.insert(atom.clone()).unwrap();
        }
        cache.note_growth(&grown);
        let watermarks: HashMap<Symbol, usize> = grown
            .delta_since(&cursor)
            .into_iter()
            .map(|d| (d.predicate, d.from_row))
            .collect();
        let needed: Vec<_> = required_indexes(&plan)
            .into_iter()
            .chain(delta_edge_indexes(&plan))
            .collect();
        let indexes = cache.snapshot(&grown, &needed);
        let ctx = ExecContext::new(indexes, PlanShards::new(), parallelism, 0)
            .with_pool(pooled(parallelism));
        let delta = execute_delta(&plan, &grown, &watermarks, &ctx)
            .expect("acyclic queries compile to Yannakakis plans");
        answers.extend(delta);
        assert_eq!(
            answers,
            evaluate(q, &grown),
            "incremental maintenance diverged on {q} after {} appends",
            appends.len()
        );
    }

    #[test]
    fn delta_execution_matches_recompute_on_graph_families() {
        let base = sac_gen::random_graph_database(10, 30, 5);
        let appends: Vec<Atom> = (0..6)
            .map(|i| {
                Atom::from_parts(
                    "E",
                    vec![
                        Term::constant(&format!("n{}", i % 10)),
                        Term::constant(&format!("fresh{i}")),
                    ],
                )
            })
            .collect();
        for q in [
            sac_gen::path_query(2),
            sac_gen::path_query(3),
            sac_gen::star_query(3),
            ConjunctiveQuery::new(
                vec![intern("x0"), intern("x2")],
                sac_gen::path_query(2).body,
            )
            .unwrap(),
        ] {
            for parallelism in [1, 2] {
                check_delta(&q, &base, &appends, parallelism);
            }
        }
    }

    #[test]
    fn delta_execution_handles_constants_repeats_and_cross_products() {
        let base = Instance::from_atoms(vec![
            atom!("A", cst "1"),
            atom!("B", cst "x"),
            atom!("R", cst "a", cst "a"),
        ])
        .unwrap();
        // Disconnected query: growth in A must cross-product with all of B.
        let cross = ConjunctiveQuery::new(
            vec![intern("u"), intern("v")],
            vec![atom!("A", var "u"), atom!("B", var "v")],
        )
        .unwrap();
        check_delta(
            &cross,
            &base,
            &[atom!("A", cst "2"), atom!("B", cst "y")],
            1,
        );
        // Repeated variables: only the loop row may enter the match set.
        let diag =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("R", var "x", var "x")]).unwrap();
        check_delta(
            &diag,
            &base,
            &[atom!("R", cst "b", cst "b"), atom!("R", cst "b", cst "c")],
            1,
        );
        // Constant-pinned atom joined to a growing relation.
        let pinned = ConjunctiveQuery::new(
            vec![intern("y")],
            vec![atom!("R", cst "a", var "x"), atom!("R", var "x", var "y")],
        )
        .unwrap();
        check_delta(
            &pinned,
            &base,
            &[atom!("R", cst "a", cst "b"), atom!("R", cst "b", cst "z")],
            1,
        );
    }

    #[test]
    fn delta_execution_finds_answers_spanning_two_delta_relations() {
        // The new answer needs delta tuples at *both* atoms at once.
        let base = Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap();
        let q = ConjunctiveQuery::new(
            vec![intern("x0"), intern("x2")],
            sac_gen::path_query(2).body,
        )
        .unwrap();
        check_delta(
            &q,
            &base,
            &[atom!("E", cst "p", cst "q"), atom!("E", cst "q", cst "r")],
            1,
        );
    }

    #[test]
    fn delta_execution_declines_indexed_plans() {
        let db = sac_gen::random_graph_database(8, 20, 3);
        let plan = plan_query(
            &sac_gen::clique_query(3),
            &[],
            &db,
            &EngineConfig::default(),
        );
        let ctx = ExecContext::serial(PlanIndexes::new());
        assert!(execute_delta(&plan, &db, &HashMap::new(), &ctx).is_none());
        assert!(delta_edge_indexes(&plan).is_empty());
    }

    #[test]
    fn delta_edge_indexes_cover_multi_variable_join_keys() {
        // S(x,y,z) child of T(x,y,w): the join key {x,y} needs a cached
        // two-column index in both directions.
        let db = Instance::from_atoms(vec![
            atom!("S", cst "a", cst "b", cst "c"),
            atom!("T", cst "a", cst "b", cst "d"),
        ])
        .unwrap();
        let q = ConjunctiveQuery::boolean(vec![
            atom!("S", var "x", var "y", var "z"),
            atom!("T", var "x", var "y", var "w"),
        ])
        .unwrap();
        let plan = plan_query(&q, &[], &db, &EngineConfig::default());
        let edges = delta_edge_indexes(&plan);
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(intern("S"), vec![0, 1])));
        assert!(edges.contains(&(intern("T"), vec![0, 1])));
        // And the delta path answers through them.
        check_delta(
            &q,
            &db,
            &[
                atom!("S", cst "u", cst "v", cst "w1"),
                atom!("T", cst "u", cst "v", cst "w2"),
            ],
            1,
        );
    }

    #[test]
    fn required_shards_lists_scanned_predicates_once() {
        let db = sac_gen::random_graph_database(8, 20, 1);
        // Acyclic path: every node scans E, deduplicated to one entry.
        let plan = plan_query(&sac_gen::path_query(3), &[], &db, &EngineConfig::default());
        assert_eq!(required_shards(&plan), vec![intern("E")]);
        // Constant-pinned atom: served by indexes, not shards.
        let q =
            ConjunctiveQuery::new(vec![intern("y")], vec![atom!("E", cst "n0", var "y")]).unwrap();
        let plan = plan_query(&q, &[], &db, &EngineConfig::default());
        assert!(required_shards(&plan).is_empty());
        // Fallback: only the first (unbound) step scans.
        let plan = plan_query(
            &sac_gen::clique_query(3),
            &[],
            &db,
            &EngineConfig::default(),
        );
        assert_eq!(required_shards(&plan), vec![intern("E")]);
    }
}
