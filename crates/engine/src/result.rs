//! Typed query results: [`ResultSet`] and [`Row`].
//!
//! The engine's internal answer representation is a `BTreeSet<Vec<Term>>` —
//! precise, but positional and leaky.  [`ResultSet`] is the service-facing
//! shape: it remembers the query head's **column names**, supports iteration
//! and by-name access, and still converts back to the raw tuple set for
//! interop with the rest of the workspace (`into_tuples`).
//!
//! Rows are stored in the sorted order the underlying `BTreeSet` produced,
//! so iteration order is deterministic across runs and threads.

use sac_common::Term;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// One answer tuple, with access by position or by column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    columns: Arc<[String]>,
    values: Vec<Term>,
}

impl Row {
    /// The answer's terms, in head order.
    pub fn values(&self) -> &[Term] {
        &self.values
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns (the Boolean "yes" tuple).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The term at position `index`, if in range.
    pub fn get(&self, index: usize) -> Option<Term> {
        self.values.get(index).copied()
    }

    /// The term under column `name` (the first matching column, if the head
    /// repeats a variable).
    pub fn get_named(&self, name: &str) -> Option<Term> {
        let pos = self.columns.iter().position(|c| c == name)?;
        self.values.get(pos).copied()
    }

    /// The column names, aligned with [`Row::values`].
    pub fn columns(&self) -> &[String] {
        &self.columns
    }
}

impl Index<usize> for Row {
    type Output = Term;

    fn index(&self, index: usize) -> &Term {
        &self.values[index]
    }
}

impl Index<&str> for Row {
    type Output = Term;

    /// Panics when no column carries `name`; use [`Row::get_named`] for the
    /// fallible variant.
    fn index(&self, name: &str) -> &Term {
        let pos = self
            .columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column named `{name}`"));
        &self.values[pos]
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The materialized answer set of one query run: named columns (from the
/// query head, possibly with repetitions) over deterministically ordered
/// rows.
///
/// For a Boolean query the column list is empty and the set holds either the
/// single empty row (`true`) or nothing (`false`) — [`ResultSet::is_true`]
/// reads that directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSet {
    columns: Arc<[String]>,
    rows: Vec<Row>,
}

impl ResultSet {
    /// Assembles a result set from the engine's raw answer tuples.  Tuples
    /// must be in the head order described by `columns`.
    pub(crate) fn from_tuples(columns: Arc<[String]>, tuples: BTreeSet<Vec<Term>>) -> ResultSet {
        let rows = tuples
            .into_iter()
            .map(|values| Row {
                columns: Arc::clone(&columns),
                values,
            })
            .collect();
        ResultSet { columns, rows }
    }

    /// The column names, one per head variable (repeats preserved).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of answer rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the answer set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The Boolean reading: whether at least one answer exists.
    pub fn is_true(&self) -> bool {
        !self.rows.is_empty()
    }

    /// The rows, in deterministic (sorted) order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Whether `tuple` is one of the answers.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.rows.iter().any(|r| r.values() == tuple)
    }

    /// Converts back to the workspace's raw representation (what
    /// `sac_query::evaluate` returns), for interop and testing.
    pub fn into_tuples(self) -> BTreeSet<Vec<Term>> {
        self.rows.into_iter().map(|r| r.values).collect()
    }

    /// Borrows the answers as raw tuples, in deterministic order.
    pub fn tuples(&self) -> impl Iterator<Item = &[Term]> + '_ {
        self.rows.iter().map(|r| r.values())
    }
}

impl<'a> IntoIterator for &'a ResultSet {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl IntoIterator for ResultSet {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.columns.is_empty() {
            return write!(f, "{}", self.is_true());
        }
        write!(f, "[{}]", self.columns.join(", "))?;
        for row in &self.rows {
            write!(f, " {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        let columns: Arc<[String]> = vec!["X".to_owned(), "Y".to_owned()].into();
        let tuples: BTreeSet<Vec<Term>> = [
            vec![Term::constant("a"), Term::constant("b")],
            vec![Term::constant("a"), Term::constant("c")],
        ]
        .into_iter()
        .collect();
        ResultSet::from_tuples(columns, tuples)
    }

    #[test]
    fn named_and_positional_access_agree() {
        let rs = sample();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.columns(), &["X".to_owned(), "Y".to_owned()]);
        // Row order follows symbol interning order; find the (a, b) row by
        // content instead of assuming a position.
        let row = rs
            .iter()
            .find(|r| r.get(1) == Some(Term::constant("b")))
            .expect("the (a, b) row exists");
        assert_eq!(row.get(0), Some(Term::constant("a")));
        assert_eq!(row.get_named("Y"), Some(Term::constant("b")));
        assert_eq!(row["X"], Term::constant("a"));
        assert_eq!(row[1], Term::constant("b"));
        assert_eq!(row.get_named("Z"), None);
        assert_eq!(row.get(5), None);
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn iteration_is_deterministic_and_round_trips() {
        let rs = sample();
        let tuples: Vec<&[Term]> = rs.tuples().collect();
        assert!(tuples[0] < tuples[1], "rows keep the sorted tuple order");
        let back = rs.clone().into_tuples();
        assert_eq!(back.len(), 2);
        assert!(rs.contains(&[Term::constant("a"), Term::constant("c")]));
        assert!(!rs.contains(&[Term::constant("b"), Term::constant("b")]));
        let collected: Vec<_> = (&rs).into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn boolean_shapes_read_as_truth_values() {
        let yes = ResultSet::from_tuples(Arc::from(Vec::new()), BTreeSet::from([Vec::new()]));
        assert!(yes.is_true());
        assert_eq!(yes.len(), 1);
        assert!(yes.rows()[0].is_empty());
        assert_eq!(format!("{yes}"), "true");
        let no = ResultSet::from_tuples(Arc::from(Vec::new()), BTreeSet::new());
        assert!(!no.is_true());
        assert_eq!(format!("{no}"), "false");
    }

    #[test]
    fn display_lists_columns_then_rows() {
        let text = format!("{}", sample());
        assert!(text.starts_with("[X, Y]"));
        assert!(text.contains("(a, b)"));
    }
}
