//! # sac-engine
//!
//! An indexed, plan-based query execution subsystem: the part of the
//! workspace that turns the paper's tractability theorems into a serving
//! layer for heavy multi-query traffic.
//!
//! Everything else in the workspace answers one question about one query;
//! this crate is a **session**: an [`Engine`] owns a database, compiles each
//! incoming [`ConjunctiveQuery`](sac_query::ConjunctiveQuery) into a physical
//! [`Plan`], caches the plan by query fingerprint, and executes it over
//! lazily built, epoch-invalidated hash indexes.
//!
//! ## The strategy lattice
//!
//! The planner walks down a lattice of guarantees, taking the strongest rung
//! that applies (see [`Strategy`]):
//!
//! | rung | applies when | guarantee | paper |
//! |---|---|---|---|
//! | [`Strategy::YannakakisDirect`] | the query admits a join tree | `O(\|q\|·\|D\|)` + output | acyclic CQ evaluation, Section 2 |
//! | [`Strategy::YannakakisWitness`] | a verified acyclic `q'` with `q ≡Σ q'` exists (core without constraints; witness search under tgds) | fixed-parameter tractable: witness search depends on `\|q\|+\|Σ\|` only, then linear-time evaluation | Propositions 8/15 (witness), Proposition 24 (evaluation) |
//! | [`Strategy::IndexedSearch`] | always | NP-hard in combined complexity (as it must be), but stats-ordered and index-accelerated | the baseline the paper improves on |
//!
//! The witness rung under tgds assumes the database satisfies the
//! constraints — exactly the promise of the paper's `SemAcEval` problem.
//! Without constraints, every rung is unconditionally equivalent to naive
//! evaluation.
//!
//! The point of the session structure is amortization: deciding semantic
//! acyclicity is expensive in the query, but its cost is paid **once per
//! distinct query shape**, after which every run is a linear-time indexed
//! Yannakakis pass.  [`Engine::run_batch`] plus [`EngineMetrics`] make the
//! amortization observable (plan-cache hit rate, per-strategy counts,
//! indexes built).
//!
//! ```
//! use sac_engine::{Engine, Strategy};
//! use sac_query::evaluate;
//!
//! // A database closed under Example 1's collector tgd, and the paper's
//! // cyclic triangle query.
//! let db = sac_gen::music_database(50, 100, 5);
//! let q = sac_gen::example1_triangle();
//!
//! let mut engine = Engine::new(db.clone()).with_tgds(vec![sac_gen::collector_tgd()]);
//! // The planner reformulates the cyclic triangle into an acyclic witness…
//! assert_eq!(engine.explain(&q).strategy, Strategy::YannakakisWitness);
//! // …and the indexed Yannakakis run returns exactly the naive answers.
//! assert_eq!(engine.run(&q), evaluate(&q, &db));
//! // Both the run and a repeat reuse the plan cached by `explain`: the
//! // witness search ran exactly once.
//! engine.run(&q);
//! assert_eq!(engine.metrics().plans_built, 1);
//! assert_eq!(engine.metrics().plan_cache_hits, 2);
//! ```

pub mod engine;
mod exec;
pub mod index;
pub mod plan;

pub use engine::{Engine, EngineConfig, EngineMetrics};
pub use index::{IndexCache, JoinIndex};
pub use plan::{Explain, Plan, Strategy};
