//! # sac-engine
//!
//! An indexed, plan-based query execution subsystem: the part of the
//! workspace that turns the paper's tractability theorems into a serving
//! layer for heavy multi-query traffic.
//!
//! Everything else in the workspace answers one question about one query;
//! this crate is a **service**: a [`Database`] owns an instance, compiles
//! each incoming [`ConjunctiveQuery`](sac_query::ConjunctiveQuery) (or query
//! text) into a physical [`Plan`], caches the plan by query fingerprint, and
//! executes it over lazily built, epoch-invalidated hash indexes.  The
//! session is `Send + Sync` and serves every request through `&self`, so
//! many threads can query one shared database concurrently; failures from
//! every layer fold into the single [`SacError`] type, and answers come back
//! as typed [`ResultSet`]s with named columns.
//!
//! ## The strategy lattice
//!
//! The planner walks down a lattice of guarantees, taking the strongest rung
//! that applies (see [`Strategy`]):
//!
//! | rung | applies when | guarantee | paper |
//! |---|---|---|---|
//! | [`Strategy::YannakakisDirect`] | the query admits a join tree | `O(\|q\|·\|D\|)` + output | acyclic CQ evaluation, Section 2 |
//! | [`Strategy::YannakakisWitness`] | a verified acyclic `q'` with `q ≡Σ q'` exists (core without constraints; witness search under tgds) | fixed-parameter tractable: witness search depends on `\|q\|+\|Σ\|` only, then linear-time evaluation | Propositions 8/15 (witness), Proposition 24 (evaluation) |
//! | [`Strategy::IndexedSearch`] | always | NP-hard in combined complexity (as it must be), but stats-ordered and index-accelerated | the baseline the paper improves on |
//!
//! The witness rung under tgds assumes the database satisfies the
//! constraints — exactly the promise of the paper's `SemAcEval` problem.
//! Without constraints, every rung is unconditionally equivalent to naive
//! evaluation.
//!
//! The point of the session structure is amortization: deciding semantic
//! acyclicity is expensive in the query, but its cost is paid **once per
//! distinct query shape**, after which every run is a linear-time indexed
//! Yannakakis pass.  [`PreparedQuery`] handles pin that amortized plan for
//! repeated execution from any thread, and [`EngineMetrics`] makes the
//! amortization observable (plan-cache hit rate, per-strategy counts,
//! indexes built).
//!
//! ```
//! use sac_engine::{Database, Strategy};
//!
//! // A database closed under Example 1's collector tgd, and the paper's
//! // cyclic triangle query, prepared once and served from two threads.
//! let db = Database::from_instance(sac_gen::music_database(50, 100, 5))
//!     .with_tgds(vec![sac_gen::collector_tgd()]);
//! let q = db.prepare(sac_gen::example1_triangle()).unwrap();
//!
//! // The planner reformulated the cyclic triangle into an acyclic witness…
//! assert_eq!(q.strategy(), Strategy::YannakakisWitness);
//! // …and every thread executes the same cached plan through `&self`.
//! let expected = q.execute();
//! std::thread::scope(|scope| {
//!     for _ in 0..2 {
//!         scope.spawn(|| assert_eq!(q.execute(), expected));
//!     }
//! });
//! // The witness search ran exactly once, at prepare time.
//! assert_eq!(db.metrics().plans_built, 1);
//! ```
//!
//! ## Morsel-driven parallel execution
//!
//! With [`Database::with_parallelism`] (or [`ExecOptions`]) above 1, the
//! data-proportional phases of a run submit morsel-sized work units to a
//! **persistent worker pool** (spawned once at the first parallel run,
//! parked when idle, joined on drop), partitioned by cached hash shards
//! of the scanned relations:
//!
//! ```text
//!        Database::run / run_batch      ExecOptions { parallelism: k }
//!                    │
//!          plan cache (Arc<Plan>)           batch: one morsel per query
//!                    │
//!     IndexCache snapshot (one short lock)
//!     ├── PlanIndexes: multi-column join indexes   ──┐ both maintained
//!     └── PlanShards:  R = R₀ ∪ R₁ ∪ … ∪ R_{m−1}   ──┘ incrementally on
//!                    │   (hash-partitioned, m ≈ rows/morsel)  every insert
//!       ┌────────────┼────────────┐
//!    shard R₀     shard R₁  …  shard R_{m−1}    persistent pool (k−1
//!    match sets · semijoin chunks · fallback    threads + the submitter):
//!    search roots, one morsel per shard         injector + per-worker
//!       └────────────┼────────────┘             deques, steal on empty
//!                    ▼
//!        merge per-shard partials (set union)
//!                    │
//!         ResultSet (deterministic order)
//! ```
//!
//! Merging is order-insensitive and the final answers are sorted, so a
//! parallel run is **byte-identical** to the serial (`parallelism = 1`)
//! run regardless of thread interleaving — the differential test suite
//! asserts exactly this across every strategy rung.  Shard decompositions
//! live in the same epoch-validated cache as the join indexes and are
//! extended in place on every insert ([`IndexCache::note_growth`]), so a
//! single fact append costs a few hash inserts instead of a rebuild.
//! [`EngineMetrics::shard_tasks`], [`EngineMetrics::morsels_dispatched`]
//! and [`EngineMetrics::morsel_steals`] make the fan-out observable even
//! on single-core hosts, where wall-clock speedup cannot show;
//! [`EngineMetrics::threads_spawned`] reports the pool size once, not a
//! per-region spawn count — the pool never respawns.
//!
//! ## Materialized views
//!
//! [`Database::materialize`] turns a query into a standing one: its answer
//! set is stored and then **maintained** under fact appends instead of
//! recomputed.  On the direct Yannakakis rung maintenance is incremental —
//! the storage layer's per-relation delta logs
//! ([`sac_storage::DeltaCursor`]) name exactly the appended rows, and the
//! engine pushes them through the view's cached join tree (delta match
//! sets at the dirty nodes, index-driven restriction along the tree edges,
//! then the ordinary semijoin sweeps and join-back-up over delta-sized
//! tables), so a refresh costs O(Δ·fan-out), not O(database).  Witness and
//! indexed-rung views refresh by recompute.  See [`view`] for the
//! maintenance model, [`MaterializedView`] for the handle API
//! (`snapshot` / `refresh` / `is_fresh`) and the `view_*` counters of
//! [`EngineMetrics`] for observability.
//!
//! ## Observability
//!
//! The engine is instrumented end to end through the std-only
//! [`sac_telemetry`] crate, re-exported here as [`telemetry`]:
//!
//! - [`Database::run_traced`] / [`PreparedQuery::run_traced`] /
//!   [`MaterializedView::refresh_traced`] return a [`QueryTrace`] alongside
//!   the answers — rung chosen, plan- and index-cache outcomes, per-phase
//!   wall times that sum to the recorded total by construction, per-node
//!   rows in/out, and the parallel fan-out.
//! - [`EngineMetrics`] carries lock-free log-bucketed latency histograms
//!   ([`HistogramSnapshot`]: p50/p90/p99) for runs, plan compilations and
//!   view refreshes, recorded on **every** operation at the cost of a few
//!   relaxed atomic adds.
//! - An optional process-wide [`EventSink`] ([`telemetry::bus`]) receives
//!   structured [`Event`]s (plans built, runs completed, indexes and shard
//!   sets built, parallel regions, view registrations and refreshes).  With
//!   no sink installed the emit sites are a single relaxed atomic load and
//!   the event is never constructed.
//!
//! The legacy single-owner [`Engine`] survives as a deprecated shim over
//! [`Database`]; see [`engine`] for the migration table.

pub mod database;
pub mod datalog;
pub mod durability;
pub mod engine;
mod error;
mod exec;
pub mod index;
pub mod plan;
mod pool;
mod result;
pub mod view;

/// The engine's observability layer (the `sac-telemetry` crate): traces,
/// histograms, and the process-wide event bus.
pub use sac_telemetry as telemetry;

pub use database::{
    Database, EngineConfig, EngineMetrics, ExecOptions, PreparedQuery, QuerySource,
};
pub use datalog::{DatalogOptions, DatalogRun, DatalogSource, DatalogStats, PreparedDatalog};
pub use durability::{CheckpointReport, DurabilityOptions, RecoveryReport, SyncMode};
#[allow(deprecated)]
pub use engine::Engine;
pub use error::{SacError, SacResult};
pub use index::{IndexCache, JoinIndex, ShardSet};
pub use plan::{Explain, Plan, Strategy};
pub use result::{ResultSet, Row};
pub use sac_datalog::{Certificate, CheckError, DatalogProgram, DerivationStep, Premise};
pub use sac_telemetry::{
    fmt_ns, Event, EventSink, HistogramSnapshot, JsonLinesSink, NodeRows, Phase, PhaseTimes,
    QueryTrace, RingSink,
};
pub use view::{MaterializedView, RefreshMode, ViewOptions, ViewRefresh};
