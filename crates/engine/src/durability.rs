//! Durable persistence for [`Database`](crate::Database): the glue between the engine's
//! append path and the `sac-wal` crate's log, snapshot and recovery
//! primitives.
//!
//! ## Model
//!
//! A durable database owns a directory:
//!
//! ```text
//! <dir>/wal.sacwal                    the append-only fact log
//! <dir>/snapshot-<seq>.sacsnap        compacted checkpoints (newest wins)
//! ```
//!
//! Every mutation that adds facts ([`Database::insert`](crate::Database::insert) /
//! [`Database::extend_from`](crate::Database::extend_from) / [`Database::load_facts`](crate::Database::load_facts)) appends one
//! [`FactBatch`] — the batch's rows as dictionary codes plus the dictionary
//! delta needed to decode them in another process — **while still holding
//! the instance write guard**, so durability is atomic with visibility: a
//! concurrent reader that can observe the new facts can only do so after
//! they are on the log (and, under [`SyncMode::Always`], fsynced).
//!
//! A **checkpoint** ([`Database::checkpoint`](crate::Database::checkpoint), or automatically every
//! [`DurabilityOptions::snapshot_every`] appends) dumps the full columnar
//! state — relations, dictionary prefix, constraint set, registered view
//! definitions, and the plan cache's query fingerprints — into an
//! atomically-renamed snapshot file, then truncates the WAL it covers.
//!
//! **Recovery** ([`Database::open`](crate::Database::open)) is the reverse: load the newest valid
//! snapshot, replay the WAL tail (truncating a torn final record per the
//! [`sac_wal::log`] repair rule), re-register and refresh the persisted
//! materialized views, warm the plan cache from the persisted fingerprints,
//! and finish with a fresh checkpoint so the rebuilt state — whose
//! dictionary codes belong to *this* process — is the new baseline.
//!
//! ## Locking
//!
//! The durability state sits in its own [`Mutex`], acquired strictly after
//! the instance guard (lock order: `tgds` → `instance` → `views` →
//! per-view state → `indexes`, with `durability` last).  Checkpoints need
//! the tgd set, but the plan path acquires `tgds` *before* `instance`, so
//! reading the live tgds under the instance guard would invert the order;
//! instead the core caches its own structural copy, updated by
//! [`Database::set_tgds`](crate::Database::set_tgds).

use crate::error::{SacError, SacResult};
use crate::view::ViewOptions;
use sac_common::Symbol;
use sac_deps::Tgd;
use sac_query::ConjunctiveQuery;
use sac_storage::{dict, DeltaCursor, Instance};
use sac_wal::{
    latest_snapshot, prune_snapshots, write_snapshot, AtomRepr, FactBatch, QueryRepr,
    RelationBatch, Snapshot, TermRepr, TgdRepr, ViewRepr, WalError, WalWriter,
};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

pub use sac_wal::{DurabilityOptions, SyncMode};

/// WAL file name inside a durable database's directory.
const WAL_FILE: &str = "wal.sacwal";

/// Snapshot files kept after a checkpoint (the newest plus one fallback).
const SNAPSHOTS_KEPT: usize = 2;

impl From<WalError> for SacError {
    fn from(e: WalError) -> SacError {
        SacError::Persistence {
            message: e.to_string(),
        }
    }
}

/// What [`Database::open`](crate::Database::open) found and did (see
/// [`Database::recovery_report`](crate::Database::recovery_report)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The WAL sequence number of the snapshot recovery started from
    /// (0 when no snapshot existed).
    pub snapshot_seq: u64,
    /// Atoms loaded from the snapshot.
    pub snapshot_atoms: usize,
    /// WAL records replayed on top of the snapshot.
    pub replayed_batches: usize,
    /// Fact rows those records carried.
    pub replayed_rows: usize,
    /// Bytes of torn WAL tail truncated away.
    pub truncated_bytes: u64,
    /// Materialized views re-registered and refreshed.
    pub views: usize,
    /// Plans warmed back into the plan cache.
    pub plans: usize,
    /// Recovery wall time in microseconds.
    pub micros: u64,
}

/// What one checkpoint wrote (see [`Database::checkpoint`](crate::Database::checkpoint)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The last WAL sequence number the snapshot covers.
    pub seq: u64,
    /// The snapshot file written.
    pub path: PathBuf,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Atoms the snapshot holds.
    pub atoms: usize,
    /// Checkpoint wall time in microseconds.
    pub micros: u64,
}

/// Mutable durability state, guarded by the core's mutex.
#[derive(Debug)]
pub(crate) struct DurableState {
    /// The open, append-positioned log.
    pub(crate) wal: WalWriter,
    /// Sequence number the next appended batch gets.
    pub(crate) next_seq: u64,
    /// How many codes of the process-wide dictionary are already covered
    /// by persisted state (snapshot dump or appended deltas); the next
    /// batch ships `terms_range(dict_mark, len)`.
    pub(crate) dict_mark: u32,
    /// Appends since the last checkpoint, for the auto-snapshot policy.
    pub(crate) since_snapshot: usize,
}

/// The per-database durability engine: directory, options, and the
/// mutex-guarded mutable state.  `None` on non-durable databases — the
/// entire persistence layer costs one `Option` check there.
#[derive(Debug)]
pub(crate) struct DurabilityCore {
    pub(crate) dir: PathBuf,
    pub(crate) options: DurabilityOptions,
    pub(crate) state: Mutex<DurableState>,
    /// Structural copy of the constraint set, maintained by
    /// [`Database::set_tgds`](crate::Database::set_tgds) so checkpoints never read the `tgds` lock
    /// while holding the instance guard (see the module docs on ordering).
    pub(crate) tgds_repr: Mutex<Vec<TgdRepr>>,
}

impl DurabilityCore {
    pub(crate) fn lock_state(&self) -> std::sync::MutexGuard<'_, DurableState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn lock_tgds_repr(&self) -> std::sync::MutexGuard<'_, Vec<TgdRepr>> {
        self.tgds_repr.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The WAL path inside `dir`.
    pub(crate) fn wal_path(dir: &Path) -> PathBuf {
        dir.join(WAL_FILE)
    }
}

/// Builds the [`FactBatch`] describing everything `instance` gained since
/// `cursor`, shipping the dictionary delta `dict_mark..len` alongside.
/// Returns `None` when nothing grew (idempotent re-inserts).
pub(crate) fn delta_batch(
    instance: &Instance,
    cursor: &DeltaCursor,
    seq: u64,
    dict_mark: u32,
) -> Option<(FactBatch, u32)> {
    let deltas = instance.delta_since(cursor);
    let mut relations = Vec::with_capacity(deltas.len());
    for delta in &deltas {
        let arity = delta.relation.arity();
        let total = delta.relation.len();
        let row_count = total - delta.from_row;
        if row_count == 0 {
            continue;
        }
        // Flatten the appended tail row-major from the columnar store.
        let mut rows = Vec::with_capacity(row_count * arity);
        for row in delta.from_row..total {
            for pos in 0..arity {
                rows.push(delta.relation.column(pos)[row]);
            }
        }
        relations.push(RelationBatch {
            predicate: delta.predicate.as_str(),
            arity,
            row_count,
            rows,
        });
    }
    if relations.is_empty() {
        return None;
    }
    // Every code in the rows was assigned before this point, so the range
    // up to the current dictionary length covers all of them.
    let dict_len = u32::try_from(dict::len()).expect("term dictionary overflow");
    let dict_terms = dict::terms_range(dict_mark, dict_len)
        .into_iter()
        .map(TermRepr::of)
        .collect();
    Some((
        FactBatch {
            seq,
            dict_start: dict_mark,
            dict_terms,
            relations,
        },
        dict_len,
    ))
}

/// Structural representation of a tgd (for the checkpoint's cached copy).
pub(crate) fn tgd_repr(tgd: &Tgd) -> TgdRepr {
    TgdRepr {
        body: tgd.body.iter().map(AtomRepr::of).collect(),
        head: tgd.head.iter().map(AtomRepr::of).collect(),
    }
}

/// Structural representation of a query (view definitions and plan-cache
/// fingerprints persist this instead of display text, which does not
/// round-trip through the parser).
pub(crate) fn query_repr(
    name: Option<&String>,
    head: &[Symbol],
    body: &[sac_common::Atom],
) -> QueryRepr {
    QueryRepr {
        name: name.cloned(),
        head: head.iter().map(|s| s.as_str()).collect(),
        body: body.iter().map(AtomRepr::of).collect(),
    }
}

/// Rebuilds a live query from its persisted representation.
pub(crate) fn query_from_repr(repr: &QueryRepr) -> SacResult<ConjunctiveQuery> {
    let head = repr.head.iter().map(|v| sac_common::intern(v)).collect();
    let body = repr.body.iter().map(AtomRepr::to_atom).collect();
    let mut query = ConjunctiveQuery::new(head, body)?;
    query.name = repr.name.clone();
    Ok(query)
}

/// Rebuilds a live tgd from its persisted representation.
pub(crate) fn tgd_from_repr(repr: &TgdRepr) -> SacResult<Tgd> {
    Ok(Tgd::new(
        repr.body.iter().map(AtomRepr::to_atom).collect(),
        repr.head.iter().map(AtomRepr::to_atom).collect(),
    )?)
}

/// Dumps the full instance (plus dictionary prefix) into snapshot form.
/// `views`, `plans` and `tgds` are supplied by the caller, which owns the
/// respective locks.
pub(crate) fn snapshot_of(
    instance: &Instance,
    last_seq: u64,
    tgds: Vec<TgdRepr>,
    views: Vec<ViewRepr>,
    plans: Vec<QueryRepr>,
) -> (Snapshot, u32) {
    let dict_len = u32::try_from(dict::len()).expect("term dictionary overflow");
    let dict = dict::terms_range(0, dict_len)
        .into_iter()
        .map(TermRepr::of)
        .collect();
    let relations = instance
        .predicates()
        .filter_map(|pred| instance.relation(pred))
        .map(|rel| {
            let arity = rel.arity();
            let row_count = rel.len();
            let mut rows = Vec::with_capacity(row_count * arity);
            for row in 0..row_count {
                for pos in 0..arity {
                    rows.push(rel.column(pos)[row]);
                }
            }
            RelationBatch {
                predicate: rel.predicate().as_str(),
                arity,
                row_count,
                rows,
            }
        })
        .collect();
    (
        Snapshot {
            last_seq,
            dict,
            relations,
            tgds,
            views,
            plans,
        },
        dict_len,
    )
}

/// The persisted maintenance options of a view.
pub(crate) fn view_repr(query: &ConjunctiveQuery, options: ViewOptions) -> ViewRepr {
    ViewRepr {
        auto_refresh: options.auto_refresh,
        max_incremental_fraction: options.max_incremental_fraction,
        query: query_repr(query.name.as_ref(), &query.head, &query.body),
    }
}

/// What scanning the on-disk state produced, before any engine object is
/// built: the rebuilt instance plus everything needed to finish recovery.
pub(crate) struct DiskState {
    pub(crate) instance: Instance,
    pub(crate) wal: WalWriter,
    pub(crate) last_seq: u64,
    pub(crate) report: RecoveryReport,
    pub(crate) tgds: Vec<TgdRepr>,
    pub(crate) views: Vec<ViewRepr>,
    pub(crate) plans: Vec<QueryRepr>,
}

/// Loads the newest valid snapshot and replays the (repaired) WAL tail
/// into a fresh [`Instance`], translating persisted codes through the
/// writing process's dictionary images.
pub(crate) fn load_disk_state(dir: &Path, options: DurabilityOptions) -> SacResult<DiskState> {
    std::fs::create_dir_all(dir).map_err(|e| SacError::Persistence {
        message: format!("create durability directory {}: {e}", dir.display()),
    })?;
    let (snapshot, _skipped) = latest_snapshot(dir)?;
    let mut report = RecoveryReport::default();

    // The translate table: persisted code → live term.  Codes are local to
    // the process that wrote them; the snapshot's dictionary prefix seeds
    // the table and each batch's delta extends (or, after a mid-epoch
    // restart, overwrites) it.
    let mut translate: Vec<sac_common::Term> = Vec::new();
    let mut instance = Instance::new();
    let (tgds, views, plans) = match &snapshot {
        Some(snap) => {
            translate.extend(snap.dict.iter().map(TermRepr::to_term));
            for rel in &snap.relations {
                insert_code_rows(&mut instance, rel, &translate)?;
            }
            report.snapshot_seq = snap.last_seq;
            report.snapshot_atoms = snap.atoms();
            (snap.tgds.clone(), snap.views.clone(), snap.plans.clone())
        }
        None => (Vec::new(), Vec::new(), Vec::new()),
    };
    let snapshot_seq = report.snapshot_seq;

    let (wal, outcome) = WalWriter::open(&DurabilityCore::wal_path(dir), options.sync_mode)?;
    report.truncated_bytes = outcome.truncated_bytes;
    let mut last_seq = snapshot_seq;
    for batch in &outcome.batches {
        // The dictionary delta applies even for records the snapshot
        // already covers: later records reference codes it introduced.
        apply_dict_delta(&mut translate, batch)?;
        if batch.seq <= snapshot_seq {
            continue;
        }
        for rel in &batch.relations {
            insert_code_rows(&mut instance, rel, &translate)?;
        }
        report.replayed_batches += 1;
        report.replayed_rows += batch.rows();
        last_seq = last_seq.max(batch.seq);
    }

    Ok(DiskState {
        instance,
        wal,
        last_seq,
        report,
        tgds,
        views,
        plans,
    })
}

/// Extends (or overwrites a prefix of) the translate table with one
/// batch's dictionary delta.  A gap means a record that introduced the
/// missing codes was lost mid-log — unrecoverable corruption, unlike a
/// torn tail.
fn apply_dict_delta(translate: &mut Vec<sac_common::Term>, batch: &FactBatch) -> SacResult<()> {
    let start = batch.dict_start as usize;
    if start > translate.len() {
        return Err(SacError::Persistence {
            message: format!(
                "WAL record {} starts its dictionary delta at code {start} but only {} codes are known",
                batch.seq,
                translate.len()
            ),
        });
    }
    for (i, repr) in batch.dict_terms.iter().enumerate() {
        let term = repr.to_term();
        match translate.get_mut(start + i) {
            Some(slot) => *slot = term,
            None => translate.push(term),
        }
    }
    Ok(())
}

/// Inserts one persisted relation dump into `instance`, translating codes.
fn insert_code_rows(
    instance: &mut Instance,
    rel: &RelationBatch,
    translate: &[sac_common::Term],
) -> SacResult<()> {
    for row in rel.code_rows() {
        let args = row
            .iter()
            .map(|&code| {
                translate
                    .get(code as usize)
                    .copied()
                    .ok_or_else(|| SacError::Persistence {
                        message: format!(
                            "relation {} references code {code} beyond the {} known dictionary entries",
                            rel.predicate,
                            translate.len()
                        ),
                    })
            })
            .collect::<SacResult<Vec<_>>>()?;
        instance.insert(sac_common::Atom::from_parts(&rel.predicate, args))?;
    }
    Ok(())
}

/// Writes `snapshot` into `dir` and prunes old generations; returns the
/// file written and its size.
pub(crate) fn persist_snapshot(dir: &Path, snapshot: &Snapshot) -> SacResult<(PathBuf, u64)> {
    let written = write_snapshot(dir, snapshot)?;
    prune_snapshots(dir, SNAPSHOTS_KEPT);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{Atom, Term};

    #[test]
    fn query_reprs_round_trip_structurally() {
        let q = ConjunctiveQuery::new(
            vec![sac_common::intern("X")],
            vec![Atom::from_parts(
                "E",
                vec![Term::variable("X"), Term::variable("Y")],
            )],
        )
        .unwrap()
        .named("lowercase_name_would_reparse_as_constant");
        let repr = query_repr(q.name.as_ref(), &q.head, &q.body);
        let back = query_from_repr(&repr).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn tgd_reprs_round_trip_structurally() {
        let tgd = Tgd::new(
            vec![Atom::from_parts(
                "E",
                vec![Term::variable("X"), Term::variable("Y")],
            )],
            vec![Atom::from_parts(
                "R",
                vec![Term::variable("Y"), Term::variable("X")],
            )],
        )
        .unwrap();
        assert_eq!(tgd_from_repr(&tgd_repr(&tgd)).unwrap(), tgd);
    }

    #[test]
    fn dict_delta_gaps_are_corruption() {
        let mut translate = Vec::new();
        let batch = FactBatch {
            seq: 1,
            dict_start: 5,
            dict_terms: vec![TermRepr::Constant("x".into())],
            relations: Vec::new(),
        };
        assert!(matches!(
            apply_dict_delta(&mut translate, &batch),
            Err(SacError::Persistence { .. })
        ));
    }

    #[test]
    fn dict_delta_overwrites_are_allowed() {
        // A process restarted mid-epoch re-ships its dictionary from code
        // 0; the overwrite re-binds the codes for the records that follow.
        let mut translate = vec![Term::constant("old")];
        let batch = FactBatch {
            seq: 2,
            dict_start: 0,
            dict_terms: vec![
                TermRepr::Constant("new".into()),
                TermRepr::Constant("tail".into()),
            ],
            relations: Vec::new(),
        };
        apply_dict_delta(&mut translate, &batch).unwrap();
        assert_eq!(
            translate,
            vec![Term::constant("new"), Term::constant("tail")]
        );
    }

    #[test]
    fn out_of_range_codes_are_corruption() {
        let mut instance = Instance::new();
        let rel = RelationBatch {
            predicate: "E".into(),
            arity: 1,
            row_count: 1,
            rows: vec![9],
        };
        assert!(matches!(
            insert_code_rows(&mut instance, &rel, &[Term::constant("only")]),
            Err(SacError::Persistence { .. })
        ));
    }
}
