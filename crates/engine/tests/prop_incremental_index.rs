//! Property tests for the engine's incremental cache maintenance: after a
//! random insert sequence announced through [`IndexCache::note_growth`],
//! every cached join index and shard decomposition must be identical to one
//! built from scratch on the final instance — the invariant that lets a
//! fact append cost a few hash inserts instead of a cache invalidation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sac_common::{Atom, Term};
use sac_engine::IndexCache;
use sac_storage::{Instance, Relation};

fn term(n: u64) -> Term {
    Term::constant(&format!("t{}", n % 9))
}

/// Grows an instance atom by atom over two binary predicates, announcing
/// every real insertion, then compares each cached structure against a
/// fresh build.
fn check_sequence(inserts: usize, k: usize, seed: u64) -> Result<(), TestCaseError> {
    let mut db = Instance::new();
    // Seed both predicates so indexes exist before the growth starts.
    db.insert(Atom::from_parts("R", vec![term(0), term(1)]))
        .unwrap();
    db.insert(Atom::from_parts("S", vec![term(2), term(3)]))
        .unwrap();
    let mut cache = IndexCache::new(&db);
    let r = sac_common::intern("R");
    let s = sac_common::intern("S");
    prop_assert!(cache.ensure(&db, r, &[0, 1]));
    prop_assert!(cache.ensure(&db, s, &[1, 0]));
    prop_assert!(cache.ensure_shards(&db, r, k));
    prop_assert!(cache.ensure_shards(&db, s, k));

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..inserts {
        let predicate = if rng.gen_bool(0.5) { "R" } else { "S" };
        let atom = Atom::from_parts(
            predicate,
            vec![term(rng.gen_range(0u64..9)), term(rng.gen_range(0u64..9))],
        );
        if db.insert(atom).unwrap() {
            cache.note_growth(&db);
        }
    }

    let mut fresh = IndexCache::new(&db);
    fresh.ensure(&db, r, &[0, 1]);
    fresh.ensure(&db, s, &[1, 0]);
    fresh.ensure_shards(&db, r, k);
    fresh.ensure_shards(&db, s, k);

    for (predicate, positions) in [(r, vec![0usize, 1]), (s, vec![1usize, 0])] {
        let incremental = cache.get(predicate, &positions).unwrap();
        let rebuilt = fresh.get(predicate, &positions).unwrap();
        prop_assert_eq!(incremental.distinct_keys(), rebuilt.distinct_keys());
        let rel = db.relation(predicate).unwrap();
        prop_assert_eq!(incremental.rows_covered(), rel.len());
        for tuple in rel.iter() {
            let key: Vec<Term> = positions.iter().map(|p| tuple[*p]).collect();
            prop_assert_eq!(incremental.rows(&key), rebuilt.rows(&key));
        }
    }
    for predicate in [r, s] {
        let incremental = cache.get_shards(predicate, k).unwrap();
        let rebuilt = fresh.get_shards(predicate, k).unwrap();
        let rel = db.relation(predicate).unwrap();
        prop_assert_eq!(incremental.rows_covered(), rel.len());
        prop_assert_eq!(incremental.shards().len(), rebuilt.shards().len());
        let total: usize = incremental.shards().iter().map(Relation::len).sum();
        prop_assert_eq!(total, rel.len());
        for (inc, scr) in incremental.shards().iter().zip(rebuilt.shards()) {
            prop_assert_eq!(inc.len(), scr.len());
            for tuple in inc.iter() {
                prop_assert!(scr.contains(&tuple));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_maintenance_matches_from_scratch_rebuilds(
        inserts in 0usize..40,
        k in 2usize..5,
        seed in 0u64..10_000,
    ) {
        check_sequence(inserts, k, seed)?;
    }
}
