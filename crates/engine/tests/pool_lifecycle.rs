//! Lifecycle suite for the persistent worker pool behind a parallel
//! [`Database`]: the pool is created once and reused across runs (no
//! respawn — asserted through the metrics), parallelism-1 sessions never
//! create it, results over the work-stealing path are identical run to
//! run and across parallelism levels, and dropping the database joins the
//! pool threads.
//!
//! Panic propagation without pool poisoning is covered by the pool's own
//! unit tests (`crates/engine/src/pool.rs`), where a panicking morsel can
//! be injected directly.

use sac_engine::{Database, ExecOptions};
use sac_query::ConjunctiveQuery;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;

fn parallel_db(parallelism: usize) -> Database {
    // min_parallel_rows: 0 forces morsel dispatch on the small fixture.
    Database::from_instance(sac_gen::random_graph_database(60, 400, 11)).with_exec_options(
        ExecOptions {
            parallelism,
            min_parallel_rows: 0,
        },
    )
}

fn workload() -> Vec<ConjunctiveQuery> {
    vec![
        sac_gen::path_query(2),
        sac_gen::path_query(3),
        sac_gen::star_query(3),
        sac_gen::cycle_query(3),
        sac_gen::clique_query(3),
    ]
}

/// One stable fingerprint over a full workload's answers.
fn digest(db: &Database) -> BTreeSet<String> {
    workload()
        .iter()
        .flat_map(|q| {
            let name = q.to_string();
            db.run(q)
                .into_tuples()
                .into_iter()
                .map(move |t| format!("{name} -> {t:?}"))
        })
        .collect()
}

#[test]
fn the_pool_is_created_once_and_reused_across_runs() {
    let db = parallel_db(4);
    assert_eq!(
        db.metrics().threads_spawned,
        0,
        "no pool before the first parallel run"
    );
    let first = digest(&db);
    let m1 = db.metrics();
    assert_eq!(m1.threads_spawned, 3, "pool size is parallelism - 1");
    assert!(m1.morsels_dispatched > 0, "regions dispatched morsels");

    let second = digest(&db);
    let m2 = db.metrics();
    assert_eq!(first, second, "pool reuse does not change answers");
    assert_eq!(
        m2.threads_spawned, m1.threads_spawned,
        "threads_spawned reports the live pool size once — a respawning \
         pool (or per-region accumulation) would inflate it"
    );
    assert!(
        m2.morsels_dispatched > m1.morsels_dispatched,
        "the second sweep dispatched onto the same pool"
    );
}

#[test]
fn serial_databases_never_create_the_pool() {
    let db = parallel_db(1);
    let _ = digest(&db);
    let _ = db.run_batch(&workload());
    let m = db.metrics();
    assert_eq!(m.threads_spawned, 0, "parallelism 1 spawns zero threads");
    assert_eq!(m.morsels_dispatched, 0);
    assert_eq!(m.morsel_steals, 0);
    assert_eq!(m.shard_tasks, 0);
}

#[test]
fn batch_fan_out_counts_one_morsel_per_query() {
    let db = parallel_db(2);
    let queries = workload();
    let results = db.run_batch(&queries);
    assert_eq!(results.len(), queries.len());
    let m = db.metrics();
    assert!(
        m.morsels_dispatched >= queries.len(),
        "each batch query is one morsel (inner runs stay serial)"
    );
    assert_eq!(m.threads_spawned, 1);
}

#[test]
fn differential_double_run_digest_across_parallelism_levels() {
    // The work-stealing path must be invisible in the answers: two runs at
    // the same level agree, and every level agrees with the serial digest.
    let serial = digest(&parallel_db(1));
    for parallelism in [2, 4] {
        let db = parallel_db(parallelism);
        let first = digest(&db);
        let second = digest(&db);
        assert_eq!(
            first, second,
            "parallelism {parallelism}: double run diverged"
        );
        assert_eq!(
            first, serial,
            "parallelism {parallelism}: stolen morsels changed answers"
        );
    }
}

#[test]
fn reset_metrics_keeps_the_pool_and_its_size() {
    let db = parallel_db(4);
    let _ = digest(&db);
    let before = db.metrics();
    assert_eq!(before.threads_spawned, 3);
    db.reset_metrics();
    let after = db.metrics();
    assert_eq!(
        after.threads_spawned, 3,
        "the pool survives a metrics window reset"
    );
    assert_eq!(after.morsels_dispatched, 0, "the window itself is zeroed");
    assert_eq!(after.morsel_steals, 0, "steal readings re-anchor to zero");
    let _ = digest(&db);
    assert!(
        db.metrics().morsels_dispatched > 0,
        "the kept pool keeps serving after the reset"
    );
}

#[test]
fn dropping_the_database_joins_the_pool() {
    // Hangs (and times the suite out) if a worker fails to exit.
    let db = parallel_db(4);
    let _ = digest(&db);
    drop(db);
}

#[test]
fn a_shared_database_serves_concurrent_parallel_runs_from_one_pool() {
    let db = Arc::new(parallel_db(4));
    let expected = digest(&db);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || digest(&db))
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), expected);
    }
    assert_eq!(db.metrics().threads_spawned, 3, "still one shared pool");
}
