//! Property tests: the database is answer-for-answer identical to naive
//! homomorphism enumeration on random query/database pairs from `sac-gen`,
//! across every strategy the planner can pick, and stays identical as the
//! instance mutates underneath the caches.

use proptest::prelude::*;
use sac_common::{intern, Atom, Term};
use sac_engine::Database;
use sac_query::{evaluate, ConjunctiveQuery};

/// The generated query families, over the `E` graph schema of
/// `sac_gen::random_graph_database`.  Mixes acyclic shapes (path, star),
/// cyclic ones (cycle, clique) and non-Boolean variants, so the sweep
/// exercises the direct-Yannakakis, witness and fallback strategies.
fn query_for(kind: usize, size: usize) -> ConjunctiveQuery {
    match kind % 6 {
        0 => sac_gen::path_query(size),
        1 => sac_gen::star_query(size),
        2 => sac_gen::cycle_query(size.max(3)),
        3 => sac_gen::clique_query(3),
        4 => {
            // Non-Boolean path: endpoints as answer variables.
            let body = sac_gen::path_query(size).body;
            ConjunctiveQuery::new(vec![intern("x0"), intern(&format!("x{size}"))], body)
                .expect("path endpoints occur in the body")
        }
        _ => {
            // Non-Boolean cycle: one answer variable on a cyclic query, so
            // the fallback strategy is exercised with projection.
            let body = sac_gen::cycle_query(size.max(3)).body;
            ConjunctiveQuery::new(vec![intern("x0")], body)
                .expect("cycle variables occur in the body")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn database_matches_naive_evaluation(
        kind in 0usize..6,
        size in 1usize..5,
        nodes in 2usize..10,
        edges in 1usize..30,
        seed in 0u64..10_000,
    ) {
        let q = query_for(kind, size);
        let reference = sac_gen::random_graph_database(nodes, edges, seed);
        let db = Database::from_instance(reference.clone());
        prop_assert_eq!(db.run(&q).into_tuples(), evaluate(&q, &reference));
    }

    #[test]
    fn batch_runs_with_interleaved_inserts_stay_consistent(
        nodes in 2usize..8,
        edges in 1usize..20,
        seed in 0u64..10_000,
        extra_src in 0usize..8,
        extra_dst in 0usize..8,
    ) {
        let start = sac_gen::random_graph_database(nodes, edges, seed);
        let workload = [
            sac_gen::path_query(2),
            sac_gen::cycle_query(3),
            sac_gen::star_query(2),
        ];
        let db = Database::from_instance(start.clone());
        // First pass: plans and indexes warm up.
        db.run_batch(&workload);
        // Mutate the database through the session (precise invalidation)…
        let extra = Atom::from_parts(
            "E",
            vec![
                Term::constant(&format!("n{extra_src}")),
                Term::constant(&format!("n{extra_dst}")),
            ],
        );
        let mut reference = start;
        reference.insert(extra.clone()).unwrap();
        db.insert(extra).unwrap();
        // …then every cached plan must see the new fact.
        for q in &workload {
            prop_assert_eq!(db.run(q).into_tuples(), evaluate(q, &reference));
        }
    }
}

/// The deterministic end of the sweep: the database equals naive evaluation
/// on the full generated family sweep (not just sampled cases), including
/// the semantically-acyclic Example 1 workload under its constraint.
#[test]
fn full_generated_family_sweep_matches_naive() {
    let reference = sac_gen::random_graph_database(14, 60, 42);
    let db = Database::from_instance(reference.clone());
    let mut checked = 0;
    for n in 1..=4 {
        for q in [
            sac_gen::path_query(n),
            sac_gen::star_query(n),
            sac_gen::cycle_query(n.max(2)),
            sac_gen::example2_query(n),
        ] {
            assert_eq!(
                db.run(&q).into_tuples(),
                evaluate(&q, &reference),
                "disagreement on {q}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 16);

    let music = sac_gen::music_database(40, 80, 5);
    let db = Database::from_instance(music.clone()).with_tgds(vec![sac_gen::collector_tgd()]);
    assert_eq!(
        db.run(&sac_gen::example1_triangle()).into_tuples(),
        evaluate(&sac_gen::example1_triangle(), &music)
    );
}
