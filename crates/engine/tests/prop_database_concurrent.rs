//! Property test for the concurrent façade: on random acyclic **and** cyclic
//! queries, a shared [`PreparedQuery`] executed from multiple threads at once
//! returns, in every thread, results identical to naive homomorphism
//! enumeration (`sac_query::evaluate`) over the same data.
//!
//! [`PreparedQuery`]: sac_engine::PreparedQuery

use proptest::prelude::*;
use sac_engine::Database;
use sac_query::{evaluate, ConjunctiveQuery};
use std::thread;

/// Alternating acyclic (path/star) and cyclic (cycle/clique) shapes, so both
/// Yannakakis rungs and the indexed fallback are exercised under
/// concurrency.
fn query_for(kind: usize, size: usize) -> ConjunctiveQuery {
    match kind % 4 {
        0 => sac_gen::path_query(size),
        1 => sac_gen::star_query(size),
        2 => sac_gen::cycle_query(size.max(3)),
        _ => sac_gen::clique_query(3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prepared_queries_agree_with_naive_from_every_thread(
        kind in 0usize..4,
        size in 1usize..5,
        nodes in 2usize..10,
        edges in 1usize..40,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let q = query_for(kind, size);
        let reference = sac_gen::random_graph_database(nodes, edges, seed);
        let expected = evaluate(&q, &reference);

        let db = Database::from_instance(reference);
        let prepared = db.prepare(&q).expect("generated queries are valid");
        let results: Vec<_> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let local = prepared.clone();
                    scope.spawn(move || local.execute().into_tuples())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for tuples in results {
            prop_assert_eq!(&tuples, &expected);
        }
        // One prepare, N executions — the plan was compiled exactly once.
        prop_assert_eq!(db.metrics().plans_built, 1);
        prop_assert_eq!(db.metrics().queries_run, threads);
    }
}
