//! Property tests for materialized-view maintenance: under a random append
//! sequence, an incrementally maintained view must always equal a
//! from-scratch evaluation of its query — for auto-refresh and lazy views,
//! Boolean and non-Boolean heads, every strategy rung the generated
//! queries reach, and serial as well as parallel execution.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sac_common::{intern, Atom, Term};
use sac_engine::{Database, ExecOptions, ViewOptions};
use sac_query::{evaluate, ConjunctiveQuery};
use sac_storage::Instance;

fn node(n: u64) -> Term {
    Term::constant(&format!("n{}", n % 12))
}

fn view_queries() -> Vec<ConjunctiveQuery> {
    vec![
        sac_gen::path_query(2),           // Boolean, direct rung
        sac_gen::star_query(3),           // Boolean, shared hub
        sac_gen::looped_triangle_query(), // witness rung (full refresh)
        sac_gen::clique_query(3),         // indexed rung (full refresh)
        ConjunctiveQuery::new(
            vec![intern("x0"), intern("x2")],
            sac_gen::path_query(2).body,
        )
        .unwrap(), // non-Boolean, direct rung
        ConjunctiveQuery::new(vec![intern("c")], sac_gen::star_query(2).body).unwrap(),
    ]
}

fn check_sequence(
    base_edges: usize,
    appends: usize,
    parallelism: usize,
    lazy: bool,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| {
        Atom::from_parts(
            "E",
            vec![node(rng.gen_range(0u64..12)), node(rng.gen_range(0u64..12))],
        )
    };
    let mut reference = Instance::new();
    // Seed E so every view has a relation to plan against.
    reference.insert(draw(&mut rng)).unwrap();
    for _ in 0..base_edges {
        let _ = reference.insert(draw(&mut rng)).unwrap();
    }
    let db = Database::from_instance(reference.clone()).with_exec_options(ExecOptions {
        parallelism,
        min_parallel_rows: 0,
    });
    let options = ViewOptions {
        auto_refresh: !lazy,
        ..ViewOptions::default()
    };
    let queries = view_queries();
    let views: Vec<_> = queries
        .iter()
        .map(|q| db.materialize_with(q, options).unwrap())
        .collect();

    for step in 0..appends {
        let atom = draw(&mut rng);
        reference.insert(atom.clone()).unwrap();
        db.insert(atom).unwrap();
        // Lazy views refresh every third append (so staleness windows of
        // more than one batch are exercised); auto views are always fresh.
        let refresh_now = !lazy || step % 3 == 2 || step + 1 == appends;
        for view in &views {
            if refresh_now {
                view.refresh();
                prop_assert!(view.is_fresh());
                prop_assert_eq!(
                    view.snapshot().into_tuples(),
                    evaluate(view.query(), &reference)
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn maintained_views_always_equal_from_scratch_evaluation(
        base_edges in 0usize..30,
        appends in 1usize..20,
        parallelism in 1usize..3,
        lazy_bit in 0u8..2,
        seed in 0u64..10_000,
    ) {
        check_sequence(base_edges, appends, parallelism, lazy_bit == 1, seed)?;
    }
}
