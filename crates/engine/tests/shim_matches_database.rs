//! Regression suite for the deprecated [`Engine`] shim: on an identical
//! workload — queries across every strategy rung, interleaved inserts and
//! bulk loads — the shim must return **byte-identical** results and metrics
//! to the [`Database`] it wraps, so the deprecation path cannot silently
//! drift from the core.

#![allow(deprecated)]

use sac_common::{Atom, Term};
use sac_engine::{Database, Engine};
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;

fn workload() -> Vec<ConjunctiveQuery> {
    vec![
        sac_gen::path_query(2),           // acyclic → direct Yannakakis
        sac_gen::star_query(3),           // acyclic → direct Yannakakis
        sac_gen::looped_triangle_query(), // cyclic, acyclic core → witness
        sac_gen::cycle_query(3),          // cyclic core → indexed fallback
        sac_gen::clique_query(3),         // cyclic core → indexed fallback
    ]
}

fn extra_facts() -> Instance {
    Instance::from_atoms((0..6).map(|i| {
        Atom::from_parts(
            "E",
            vec![
                Term::constant(&format!("x{i}")),
                Term::constant(&format!("x{}", (i + 1) % 6)),
            ],
        )
    }))
    .unwrap()
}

#[test]
fn shim_and_database_return_identical_results_and_metrics() {
    let data = sac_gen::random_graph_database(12, 50, 77);
    let mut engine = Engine::new(data.clone());
    let db = Database::from_instance(data);

    // Identical interleaving on both sides: batch, insert, single runs,
    // bulk load, batch again (second pass hits the plan caches).
    let queries = workload();
    let fresh = Atom::from_parts("E", vec![Term::constant("s0"), Term::constant("s1")]);

    let shim_first = engine.run_batch(&queries);
    assert!(engine.insert(fresh.clone()).unwrap());
    let shim_single: Vec<_> = queries.iter().map(|q| engine.run(q)).collect();
    engine.extend_from(&extra_facts()).unwrap();
    let shim_second = engine.run_batch(&queries);

    let db_first: Vec<_> = db
        .run_batch(&queries)
        .into_iter()
        .map(|rs| rs.into_tuples())
        .collect();
    assert!(db.insert(fresh).unwrap());
    let db_single: Vec<_> = queries.iter().map(|q| db.run(q).into_tuples()).collect();
    db.extend_from(&extra_facts()).unwrap();
    let db_second: Vec<_> = db
        .run_batch(&queries)
        .into_iter()
        .map(|rs| rs.into_tuples())
        .collect();

    // Byte-identical answers at every step…
    assert_eq!(format!("{shim_first:?}"), format!("{db_first:?}"));
    assert_eq!(format!("{shim_single:?}"), format!("{db_single:?}"));
    assert_eq!(format!("{shim_second:?}"), format!("{db_second:?}"));

    // …and byte-identical work counters: same runs, same strategy counts,
    // same cache behaviour, same index/shard accounting.  The latency
    // histograms are wall-clock and legitimately differ between the two
    // sessions, so compare the counter projection.
    let shim_metrics = engine.metrics().counters_only();
    let db_metrics = db.metrics().counters_only();
    assert_eq!(shim_metrics, db_metrics);
    assert_eq!(format!("{shim_metrics:?}"), format!("{db_metrics:?}"));
    assert_eq!(format!("{shim_metrics}"), format!("{db_metrics}"));
    assert_eq!(engine.cached_plans(), db.cached_plans());
    // Both sessions did record latencies — the distributions just differ.
    assert_eq!(
        engine.metrics().run_latency.count,
        db.metrics().run_latency.count
    );

    // The workload really exercised all three rungs.
    assert!(db_metrics.runs_yannakakis_direct > 0);
    assert!(db_metrics.runs_yannakakis_witness > 0);
    assert!(db_metrics.runs_indexed_search > 0);
}

#[test]
fn shim_and_database_agree_under_constraints() {
    let q = sac_gen::example1_triangle();
    let data = sac_gen::music_database(25, 50, 3);
    let tgds = vec![sac_gen::collector_tgd()];
    let mut engine = Engine::new(data.clone()).with_tgds(tgds.clone());
    let db = Database::from_instance(data).with_tgds(tgds);
    assert_eq!(
        format!("{:?}", engine.run(&q)),
        format!("{:?}", db.run(&q).into_tuples())
    );
    assert_eq!(
        format!("{:?}", engine.explain(&q)),
        format!("{:?}", db.explain(&q))
    );
    assert_eq!(
        engine.metrics().counters_only(),
        db.metrics().counters_only()
    );
}
