//! `sac-telemetry` — observability primitives for the execution engine.
//!
//! Three std-only building blocks, deliberately free of engine types so
//! any layer can depend on them:
//!
//! * **[`Histogram`]** — lock-free log-bucketed latency histograms
//!   (atomic buckets, `p50`/`p90`/`p99` via [`HistogramSnapshot`]) for
//!   run / prepare / view-refresh latencies.
//! * **[`Probe`] / [`QueryTrace`]** — per-run phase timers with a
//!   contiguous boundary-mark discipline (phase times always sum to the
//!   traced span) plus per-join-tree-node row counts, surfaced by the
//!   engine as `run_traced`.
//! * **[`Event`] / [`EventSink`] / [`bus`]** — a pluggable event stream
//!   the engine emits into ([`RingSink`] in memory, [`JsonLinesSink`]
//!   for benches); one relaxed atomic load when no sink is installed.
//!
//! ```
//! use sac_telemetry::{Phase, Probe};
//!
//! let mut probe = Probe::start();
//! // ... plan the query ...
//! probe.mark(Phase::Plan);
//! // ... execute ...
//! probe.mark(Phase::Decode);
//! let (phases, _nodes, total_ns) = probe.finish();
//! assert_eq!(phases.total_ns(), total_ns);
//! ```

mod events;
mod histogram;
mod trace;

pub use events::{bus, Event, EventSink, JsonLinesSink, RingSink};
pub use histogram::{fmt_ns, Histogram, HistogramSnapshot};
pub use trace::{NodeRows, Phase, PhaseTimes, Probe, QueryTrace};
