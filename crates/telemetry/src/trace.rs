//! Per-run query traces: execution phases, the boundary-mark [`Probe`]
//! that attributes wall time to them, and the [`QueryTrace`] a traced run
//! returns.
//!
//! Timing discipline: a probe holds the timestamp of the last phase
//! boundary, and [`Probe::mark`] charges everything elapsed since that
//! boundary to the named phase.  Phases are therefore contiguous by
//! construction — their sum equals the span from probe creation to the
//! last mark, so the trace's per-phase times always account for its total
//! without a fudge bucket.
//!
//! Trace *structure* (strategy, cache outcomes, per-node row counts,
//! answer count) is deterministic across runs on the same database;
//! [`QueryTrace::structure_digest`] hashes exactly that subset so
//! differential suites can diff it while wall times vary freely.

use std::fmt;
use std::time::{Duration, Instant};

use crate::histogram::fmt_ns;

/// One execution phase of a traced run.
///
/// The Yannakakis rungs pass through `Plan → Snapshot → MatchSets →
/// SemijoinUp → SemijoinDown → JoinBack → Decode`; the indexed-search rung
/// replaces the middle with a single `Search` phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Plan-cache lookup plus planning on a miss.
    Plan,
    /// Index/shard cache snapshot under the cache lock.
    Snapshot,
    /// Phase 1: building the per-node match sets.
    MatchSets,
    /// Phase 2a: the upward (leaf-to-root) semijoin sweep.
    SemijoinUp,
    /// Phase 2b: the downward (root-to-leaf) semijoin sweep.
    SemijoinDown,
    /// Phase 3: the output-bounded join-back-up.
    JoinBack,
    /// The indexed-search rung's backtracking enumeration.
    Search,
    /// Dictionary decode plus result-set materialization.
    Decode,
}

impl Phase {
    /// Every phase, in canonical pipeline order.
    pub const ALL: [Phase; 8] = [
        Phase::Plan,
        Phase::Snapshot,
        Phase::MatchSets,
        Phase::SemijoinUp,
        Phase::SemijoinDown,
        Phase::JoinBack,
        Phase::Search,
        Phase::Decode,
    ];

    /// The phase's stable snake_case name (used in JSON keys and digests).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Snapshot => "snapshot",
            Phase::MatchSets => "match_sets",
            Phase::SemijoinUp => "semijoin_up",
            Phase::SemijoinDown => "semijoin_down",
            Phase::JoinBack => "join_back",
            Phase::Search => "search",
            Phase::Decode => "decode",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Nanoseconds attributed to each [`Phase`] of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    ns: [u64; Phase::ALL.len()],
}

impl PhaseTimes {
    /// Adds `ns` nanoseconds to `phase`.
    pub fn add(&mut self, phase: Phase, ns: u64) {
        self.ns[phase.index()] += ns;
    }

    /// Nanoseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Sum over all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// The phases that received any time, in pipeline order.
    pub fn nonzero(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL
            .into_iter()
            .map(|p| (p, self.get(p)))
            .filter(|&(_, ns)| ns > 0)
    }

    /// The phase holding the most time, if any time was recorded at all.
    pub fn dominant(&self) -> Option<(Phase, u64)> {
        self.nonzero().max_by_key(|&(_, ns)| ns)
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (phase, ns) in self.nonzero() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{phase} {}", fmt_ns(ns))?;
        }
        if first {
            write!(f, "no phases")?;
        }
        Ok(())
    }
}

/// Row counts through one join-tree node: match-set size after phase 1
/// (`rows_in`) and after both semijoin sweeps (`rows_out`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRows {
    /// The node's atom, in display form (predicate plus argument shape).
    pub node: String,
    /// Match-set rows entering the semijoin sweeps.
    pub rows_in: usize,
    /// Match-set rows surviving both sweeps.
    pub rows_out: usize,
}

/// Collects phase boundaries and per-node row counts during one run.
///
/// Created when the run starts; [`Probe::mark`] charges the time since the
/// previous boundary to the finished phase.  Marking the same phase twice
/// accumulates (the decode phase, for example, spans the executor's
/// dictionary decode and the caller's result materialization).
#[derive(Debug)]
pub struct Probe {
    started: Instant,
    last_boundary: Instant,
    phases: PhaseTimes,
    nodes: Vec<NodeRows>,
}

impl Probe {
    /// Starts a probe; the first `mark` charges from this moment.
    pub fn start() -> Probe {
        let now = Instant::now();
        Probe {
            started: now,
            last_boundary: now,
            phases: PhaseTimes::default(),
            nodes: Vec::new(),
        }
    }

    /// Ends `phase`: charges it everything since the previous boundary.
    pub fn mark(&mut self, phase: Phase) {
        let now = Instant::now();
        let ns = now.duration_since(self.last_boundary).as_nanos();
        self.phases
            .add(phase, u64::try_from(ns).unwrap_or(u64::MAX));
        self.last_boundary = now;
    }

    /// Records one join-tree node's rows in/out.
    pub fn node(&mut self, node: impl Into<String>, rows_in: usize, rows_out: usize) {
        self.nodes.push(NodeRows {
            node: node.into(),
            rows_in,
            rows_out,
        });
    }

    /// Wall time since the probe started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Consumes the probe into its phase times, node rows, and the total
    /// span from start to the last boundary (which equals the phase sum).
    pub fn finish(self) -> (PhaseTimes, Vec<NodeRows>, u64) {
        let total = self.last_boundary.duration_since(self.started).as_nanos();
        (
            self.phases,
            self.nodes,
            u64::try_from(total).unwrap_or(u64::MAX),
        )
    }
}

/// Everything one traced run observed about itself.
///
/// Produced by `Database::run_traced` / `PreparedQuery::run_traced` (and
/// `MaterializedView::refresh_traced`, which also fills the view fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// The query, in display form.
    pub query: String,
    /// The strategy rung the planner chose (`yannakakis-direct`,
    /// `yannakakis-witness`, or `indexed-search`).
    pub strategy: String,
    /// Whether the plan came out of the plan cache.
    pub plan_cache_hit: bool,
    /// Cached indexes and shard sets reused by this run.
    pub index_cache_hits: usize,
    /// Indexes and shard sets this run had to build.
    pub index_cache_misses: usize,
    /// Wall time attributed to each execution phase.
    pub phases: PhaseTimes,
    /// Total recorded latency in nanoseconds (phase sum tracks this).
    pub total_ns: u64,
    /// Rows in/out per join-tree node (empty on the indexed rung).
    pub node_rows: Vec<NodeRows>,
    /// Parallel tasks executed across the run's fan-out points.
    pub shard_tasks: usize,
    /// Worker-pool width the run had available (the persistent pool's
    /// thread count, reported once; 0 when every region ran inline).  The
    /// historical name is kept for schema continuity — the pool spawns
    /// nothing per run.
    pub threads_spawned: usize,
    /// Answer rows returned.
    pub answers: usize,
    /// For view refreshes: the refresh mode (`fresh`, `incremental`,
    /// `full`).
    pub refresh_mode: Option<String>,
    /// For view refreshes: delta rows pushed through the plan.
    pub delta_rows: Option<usize>,
}

impl QueryTrace {
    /// FNV-1a over the run's *structural* fields — everything above except
    /// wall times — which is identical across repeated runs on the same
    /// database and configuration.  Differential suites digest this.
    pub fn structure_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut absorb = |text: &str| {
            for byte in text.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        absorb(&self.query);
        absorb(&self.strategy);
        absorb(if self.plan_cache_hit { "|hit" } else { "|miss" });
        absorb(&format!(
            "|ix {}+{}",
            self.index_cache_hits, self.index_cache_misses
        ));
        for n in &self.node_rows {
            absorb(&format!("|{} {}->{}", n.node, n.rows_in, n.rows_out));
        }
        absorb(&format!(
            "|tasks {} answers {}",
            self.shard_tasks, self.answers
        ));
        if let (Some(mode), Some(delta)) = (&self.refresh_mode, self.delta_rows) {
            absorb(&format!("|{mode} {delta}"));
        }
        hash
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} in {}: plan {}, {} cached + {} built indexes; {}",
            self.query,
            self.strategy,
            fmt_ns(self.total_ns),
            if self.plan_cache_hit {
                "cache hit"
            } else {
                "cache miss"
            },
            self.index_cache_hits,
            self.index_cache_misses,
            self.phases,
        )?;
        for n in &self.node_rows {
            write!(f, "; {} {}→{}", n.node, n.rows_in, n.rows_out)?;
        }
        if self.shard_tasks > 0 {
            write!(
                f,
                "; {} shard tasks on a {}-thread pool",
                self.shard_tasks, self.threads_spawned
            )?;
        }
        if let (Some(mode), Some(delta)) = (&self.refresh_mode, self.delta_rows) {
            write!(f, "; refresh {mode} ({delta} delta rows)")?;
        }
        write!(f, "; {} answers", self.answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        let mut phases = PhaseTimes::default();
        phases.add(Phase::Plan, 1_000);
        phases.add(Phase::MatchSets, 5_000);
        phases.add(Phase::Decode, 2_000);
        QueryTrace {
            query: "Ans() :- E(x, y)".to_owned(),
            strategy: "yannakakis-direct".to_owned(),
            plan_cache_hit: true,
            index_cache_hits: 2,
            index_cache_misses: 1,
            phases,
            total_ns: 8_000,
            node_rows: vec![NodeRows {
                node: "E(x, y)".to_owned(),
                rows_in: 10,
                rows_out: 7,
            }],
            shard_tasks: 4,
            threads_spawned: 2,
            answers: 7,
            refresh_mode: None,
            delta_rows: None,
        }
    }

    #[test]
    fn probe_phases_sum_to_its_total() {
        let mut probe = Probe::start();
        std::thread::sleep(Duration::from_millis(2));
        probe.mark(Phase::Plan);
        std::thread::sleep(Duration::from_millis(2));
        probe.mark(Phase::MatchSets);
        probe.node("E(x, y)", 5, 3);
        let (phases, nodes, total) = probe.finish();
        assert_eq!(phases.total_ns(), total, "phases are contiguous");
        assert!(phases.get(Phase::Plan) >= 1_000_000);
        assert!(phases.get(Phase::MatchSets) >= 1_000_000);
        assert_eq!(phases.get(Phase::Search), 0);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].rows_out, 3);
    }

    #[test]
    fn repeated_marks_accumulate() {
        let mut probe = Probe::start();
        probe.mark(Phase::Decode);
        probe.mark(Phase::Decode);
        let (phases, _, total) = probe.finish();
        assert_eq!(phases.total_ns(), total);
        assert_eq!(phases.get(Phase::Decode), total);
    }

    #[test]
    fn phase_names_and_order_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(
            names,
            [
                "plan",
                "snapshot",
                "match_sets",
                "semijoin_up",
                "semijoin_down",
                "join_back",
                "search",
                "decode"
            ]
        );
        assert_eq!(Phase::SemijoinUp.to_string(), "semijoin_up");
    }

    #[test]
    fn dominant_picks_the_heaviest_phase() {
        let mut times = PhaseTimes::default();
        assert_eq!(times.dominant(), None);
        times.add(Phase::MatchSets, 10);
        times.add(Phase::JoinBack, 30);
        times.add(Phase::Decode, 20);
        assert_eq!(times.dominant(), Some((Phase::JoinBack, 30)));
        assert_eq!(times.total_ns(), 60);
        let text = times.to_string();
        assert!(text.contains("join_back"), "{text}");
    }

    #[test]
    fn structure_digest_ignores_wall_times() {
        let a = sample_trace();
        let mut b = sample_trace();
        b.phases = PhaseTimes::default();
        b.phases.add(Phase::Plan, 999_999);
        b.total_ns = 1;
        assert_eq!(a.structure_digest(), b.structure_digest());
        let mut c = sample_trace();
        c.answers = 8;
        assert_ne!(a.structure_digest(), c.structure_digest());
        let mut d = sample_trace();
        d.plan_cache_hit = false;
        assert_ne!(a.structure_digest(), d.structure_digest());
    }

    #[test]
    fn display_reads_like_a_report() {
        let text = sample_trace().to_string();
        assert!(text.contains("yannakakis-direct"), "{text}");
        assert!(text.contains("cache hit"), "{text}");
        assert!(text.contains("match_sets"), "{text}");
        assert!(text.contains("E(x, y) 10→7"), "{text}");
        assert!(text.contains("7 answers"), "{text}");
        let mut viewy = sample_trace();
        viewy.refresh_mode = Some("incremental".to_owned());
        viewy.delta_rows = Some(12);
        assert!(viewy.to_string().contains("refresh incremental"));
    }
}
