//! Engine events and pluggable sinks.
//!
//! The engine's subsystems (executor, worker pool, index cache, view
//! registry) emit [`Event`]s through a process-global [`bus`] rather than
//! holding a reference to any backend.  The bus costs one relaxed atomic
//! load when no sink is installed — the event value is never even
//! constructed — so instrumentation is effectively free in production
//! paths and only pays when an observer opts in.
//!
//! Two sinks ship in the box: [`RingSink`] (a bounded in-memory ring, the
//! default for tests and interactive debugging) and [`JsonLinesSink`]
//! (one JSON object per line onto any writer, for benches and offline
//! analysis).

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One observation emitted by an engine subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The planner built (and cached) a plan on a cache miss.
    PlanBuilt {
        /// The query, in display form.
        query: String,
        /// The strategy rung chosen.
        strategy: String,
        /// Planning wall time in microseconds.
        micros: u64,
    },
    /// One query run finished.
    RunCompleted {
        /// The strategy rung executed.
        strategy: String,
        /// Answer rows returned.
        answers: usize,
        /// Run wall time in microseconds.
        micros: u64,
    },
    /// One Datalog fixpoint evaluation finished.
    DatalogCompleted {
        /// Rules in the evaluated program.
        rules: usize,
        /// Strata the program stratified into.
        strata: usize,
        /// Semi-naive iterations across all strata.
        iterations: usize,
        /// New facts derived on top of the base instance.
        facts_derived: usize,
        /// Derivation steps recorded in the certificate (0 when
        /// certificates were not requested).
        certificate_steps: usize,
        /// Evaluation wall time in microseconds.
        micros: u64,
    },
    /// The index cache materialized a join index on a miss.
    IndexBuilt {
        /// Relation the index covers.
        predicate: String,
        /// The indexed column positions.
        positions: Vec<usize>,
    },
    /// The index cache materialized a k-way shard decomposition.
    ShardSetBuilt {
        /// Relation that was partitioned.
        predicate: String,
        /// The hash-partitioning column.
        column: usize,
        /// Number of shards produced.
        shards: usize,
    },
    /// The persistent worker pool fanned a parallel region out.
    ParallelRegion {
        /// Morsels dispatched across the region (one per work item).
        tasks: usize,
        /// Pool size: the persistent worker threads available to claim
        /// them (the submitting thread helps too, so effective width is
        /// `threads + 1`).  Pool threads are spawned once per database,
        /// not per region.
        threads: usize,
    },
    /// A materialized view was registered with the database.
    ViewRegistered {
        /// The standing query, in display form.
        query: String,
        /// The strategy rung its plan sits on.
        strategy: String,
    },
    /// A materialized view was brought up to date.
    ViewRefreshed {
        /// The refresh mode (`fresh`, `incremental`, `full`).
        mode: String,
        /// Delta rows pushed through the plan (incremental mode).
        delta_rows: usize,
        /// Net new answer rows.
        rows_added: usize,
        /// Refresh wall time in microseconds.
        micros: u64,
    },
    /// A durable database appended one fact batch to its write-ahead log.
    WalAppended {
        /// The batch's WAL sequence number.
        seq: u64,
        /// Framed bytes written (header + body).
        bytes: u64,
        /// Fact rows the batch carries.
        rows: usize,
    },
    /// A durable database wrote a compacted snapshot and reset its WAL.
    SnapshotWritten {
        /// Last WAL sequence number the snapshot covers.
        seq: u64,
        /// Snapshot file size in bytes.
        bytes: u64,
        /// Atoms the snapshot holds.
        atoms: usize,
        /// Checkpoint wall time in microseconds.
        micros: u64,
    },
    /// Crash recovery reopened a durable database from disk.
    RecoveryCompleted {
        /// WAL records replayed on top of the snapshot.
        replayed_batches: usize,
        /// Fact rows those records carried.
        replayed_rows: usize,
        /// Materialized views re-registered and refreshed.
        views: usize,
        /// Plans warmed back into the plan cache.
        plans: usize,
        /// Recovery wall time in microseconds.
        micros: u64,
    },
}

impl Event {
    /// The event's stable snake_case kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PlanBuilt { .. } => "plan_built",
            Event::RunCompleted { .. } => "run_completed",
            Event::DatalogCompleted { .. } => "datalog_completed",
            Event::IndexBuilt { .. } => "index_built",
            Event::ShardSetBuilt { .. } => "shard_set_built",
            Event::ParallelRegion { .. } => "parallel_region",
            Event::ViewRegistered { .. } => "view_registered",
            Event::ViewRefreshed { .. } => "view_refreshed",
            Event::WalAppended { .. } => "wal_appended",
            Event::SnapshotWritten { .. } => "snapshot_written",
            Event::RecoveryCompleted { .. } => "recovery_completed",
        }
    }

    /// The event as one self-contained JSON object.
    pub fn to_json(&self) -> String {
        match self {
            Event::PlanBuilt {
                query,
                strategy,
                micros,
            } => format!(
                "{{\"event\":\"plan_built\",\"query\":{},\"strategy\":{},\"micros\":{micros}}}",
                json_string(query),
                json_string(strategy)
            ),
            Event::RunCompleted {
                strategy,
                answers,
                micros,
            } => format!(
                "{{\"event\":\"run_completed\",\"strategy\":{},\"answers\":{answers},\"micros\":{micros}}}",
                json_string(strategy)
            ),
            Event::DatalogCompleted {
                rules,
                strata,
                iterations,
                facts_derived,
                certificate_steps,
                micros,
            } => format!(
                "{{\"event\":\"datalog_completed\",\"rules\":{rules},\"strata\":{strata},\"iterations\":{iterations},\"facts_derived\":{facts_derived},\"certificate_steps\":{certificate_steps},\"micros\":{micros}}}"
            ),
            Event::IndexBuilt {
                predicate,
                positions,
            } => {
                let cols: Vec<String> = positions.iter().map(|p| p.to_string()).collect();
                format!(
                    "{{\"event\":\"index_built\",\"predicate\":{},\"positions\":[{}]}}",
                    json_string(predicate),
                    cols.join(",")
                )
            }
            Event::ShardSetBuilt {
                predicate,
                column,
                shards,
            } => format!(
                "{{\"event\":\"shard_set_built\",\"predicate\":{},\"column\":{column},\"shards\":{shards}}}",
                json_string(predicate)
            ),
            Event::ParallelRegion { tasks, threads } => format!(
                "{{\"event\":\"parallel_region\",\"tasks\":{tasks},\"threads\":{threads}}}"
            ),
            Event::ViewRegistered { query, strategy } => format!(
                "{{\"event\":\"view_registered\",\"query\":{},\"strategy\":{}}}",
                json_string(query),
                json_string(strategy)
            ),
            Event::ViewRefreshed {
                mode,
                delta_rows,
                rows_added,
                micros,
            } => format!(
                "{{\"event\":\"view_refreshed\",\"mode\":{},\"delta_rows\":{delta_rows},\"rows_added\":{rows_added},\"micros\":{micros}}}",
                json_string(mode)
            ),
            Event::WalAppended { seq, bytes, rows } => format!(
                "{{\"event\":\"wal_appended\",\"seq\":{seq},\"bytes\":{bytes},\"rows\":{rows}}}"
            ),
            Event::SnapshotWritten {
                seq,
                bytes,
                atoms,
                micros,
            } => format!(
                "{{\"event\":\"snapshot_written\",\"seq\":{seq},\"bytes\":{bytes},\"atoms\":{atoms},\"micros\":{micros}}}"
            ),
            Event::RecoveryCompleted {
                replayed_batches,
                replayed_rows,
                views,
                plans,
                micros,
            } => format!(
                "{{\"event\":\"recovery_completed\",\"replayed_batches\":{replayed_batches},\"replayed_rows\":{replayed_rows},\"views\":{views},\"plans\":{plans},\"micros\":{micros}}}"
            ),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Quotes and escapes `text` as a JSON string literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A backend that receives engine events.
///
/// Implementations must tolerate concurrent calls: events arrive from
/// whichever thread produced them, including pool workers.
pub trait EventSink: Send + Sync {
    /// Receives one event.  Must not block for long — it runs inline on
    /// engine threads.
    fn record(&self, event: &Event);
}

/// The default sink: a bounded in-memory ring that keeps the most recent
/// events and drops the oldest on overflow.
///
/// ```
/// use sac_telemetry::{Event, EventSink, RingSink};
///
/// let sink = RingSink::with_capacity(2);
/// for tasks in 1..=3 {
///     sink.record(&Event::ParallelRegion { tasks, threads: 1 });
/// }
/// let kept = sink.drain();
/// assert_eq!(kept.len(), 2); // the oldest of the three was dropped
/// assert_eq!(kept[0], Event::ParallelRegion { tasks: 2, threads: 1 });
/// ```
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most 1024 events.
    pub fn new() -> RingSink {
        RingSink::with_capacity(1024)
    }

    /// A ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Event>> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.lock().drain(..).collect()
    }

    /// A copy of the buffered events, oldest first, without draining.
    pub fn events(&self) -> Vec<Event> {
        self.lock().iter().cloned().collect()
    }
}

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::new()
    }
}

impl EventSink for RingSink {
    fn record(&self, event: &Event) {
        let mut events = self.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Writes each event as one JSON object per line onto any writer —
/// `Vec<u8>` for tests, a file for bench captures.
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps `writer`; each recorded event appends one `\n`-terminated
    /// JSON line.  Write errors are swallowed — observability must never
    /// fail the observed workload.
    pub fn new(writer: impl Write + Send + 'static) -> JsonLinesSink {
        JsonLinesSink {
            writer: Mutex::new(Box::new(writer)),
        }
    }
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonLinesSink")
    }
}

impl EventSink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = writeln!(writer, "{}", event.to_json());
    }
}

/// The process-global event bus the engine emits through.
///
/// Mirrors the storage layer's process-global term dictionary: subsystems
/// deep inside the executor can emit without any handle plumbing, and the
/// uninstalled fast path is a single relaxed atomic load.
pub mod bus {
    use super::*;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static SINK: Mutex<Option<Arc<dyn EventSink>>> = Mutex::new(None);

    fn lock() -> MutexGuard<'static, Option<Arc<dyn EventSink>>> {
        SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Installs `sink` as the process-wide event receiver, replacing any
    /// previous one.
    pub fn install(sink: Arc<dyn EventSink>) {
        *lock() = Some(sink);
        ACTIVE.store(true, Ordering::Release);
    }

    /// Removes the installed sink, returning emission to its free path.
    pub fn uninstall() {
        ACTIVE.store(false, Ordering::Release);
        *lock() = None;
    }

    /// Whether a sink is currently installed.
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Emits the event produced by `make` if a sink is installed.  With no
    /// sink this is one relaxed load — `make` never runs, so callers can
    /// format strings inside the closure without a hot-path cost.
    pub fn emit(make: impl FnOnce() -> Event) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let sink = lock().clone();
        if let Some(sink) = sink {
            sink.record(&make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bus tests share one process-global sink, so they serialize on this
    /// lock to keep install/uninstall from interleaving.
    static BUS_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn bus_guard() -> MutexGuard<'static, ()> {
        BUS_TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn ring_sink_keeps_the_newest_events() {
        let sink = RingSink::with_capacity(3);
        assert!(sink.is_empty());
        for tasks in 0..5 {
            sink.record(&Event::ParallelRegion { tasks, threads: 2 });
        }
        assert_eq!(sink.len(), 3);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            Event::ParallelRegion {
                tasks: 2,
                threads: 2
            }
        );
        let drained = sink.drain();
        assert_eq!(drained, events);
        assert!(sink.is_empty());
    }

    #[test]
    fn json_lines_are_one_object_per_event() {
        let events = [
            Event::PlanBuilt {
                query: "Ans() :- E(x, \"a\")".to_owned(),
                strategy: "yannakakis-direct".to_owned(),
                micros: 12,
            },
            Event::RunCompleted {
                strategy: "indexed-search".to_owned(),
                answers: 3,
                micros: 7,
            },
            Event::IndexBuilt {
                predicate: "E".to_owned(),
                positions: vec![0, 1],
            },
            Event::ShardSetBuilt {
                predicate: "E".to_owned(),
                column: 0,
                shards: 4,
            },
            Event::ParallelRegion {
                tasks: 8,
                threads: 4,
            },
            Event::ViewRegistered {
                query: "Ans(x) :- E(x, y)".to_owned(),
                strategy: "yannakakis-direct".to_owned(),
            },
            Event::ViewRefreshed {
                mode: "incremental".to_owned(),
                delta_rows: 5,
                rows_added: 2,
                micros: 30,
            },
            Event::WalAppended {
                seq: 7,
                bytes: 128,
                rows: 3,
            },
            Event::SnapshotWritten {
                seq: 7,
                bytes: 4096,
                atoms: 1000,
                micros: 250,
            },
            Event::RecoveryCompleted {
                replayed_batches: 2,
                replayed_rows: 6,
                views: 1,
                plans: 3,
                micros: 900,
            },
        ];
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buffer = Shared(Arc::new(Mutex::new(Vec::new())));
        let sink = JsonLinesSink::new(buffer.clone());
        for event in &events {
            sink.record(event);
        }
        let text = String::from_utf8(buffer.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(
                line.contains(&format!("\"event\":\"{}\"", event.kind())),
                "{line}"
            );
        }
        // The embedded quote in the query was escaped, not emitted raw.
        assert!(lines[0].contains("\\\"a\\\""), "{}", lines[0]);
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn bus_emits_only_while_a_sink_is_installed() {
        let _serialize = bus_guard();
        bus::uninstall();
        let mut constructed = false;
        bus::emit(|| {
            constructed = true;
            Event::ParallelRegion {
                tasks: 1,
                threads: 1,
            }
        });
        assert!(!constructed, "no sink: the closure must not run");
        assert!(!bus::is_active());

        let sink = Arc::new(RingSink::new());
        bus::install(sink.clone());
        assert!(bus::is_active());
        bus::emit(|| Event::ParallelRegion {
            tasks: 9,
            threads: 3,
        });
        assert!(sink.drain().contains(&Event::ParallelRegion {
            tasks: 9,
            threads: 3
        }));

        bus::uninstall();
        bus::emit(|| Event::ParallelRegion {
            tasks: 1,
            threads: 1,
        });
        assert!(sink.is_empty(), "uninstalled sink receives nothing");
    }

    #[test]
    fn bus_survives_concurrent_emitters() {
        let _serialize = bus_guard();
        let sink = Arc::new(RingSink::with_capacity(10_000));
        bus::install(sink.clone());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for tasks in 0..100 {
                        bus::emit(|| Event::ParallelRegion { tasks, threads: 8 });
                    }
                });
            }
        });
        bus::uninstall();
        assert_eq!(sink.len(), 800, "no emission was lost or duplicated");
    }
}
