//! Lock-free log-bucketed latency histograms.
//!
//! [`Histogram`] is a fixed-size array of atomic counters over
//! logarithmically spaced nanosecond buckets: every power-of-two octave is
//! split into [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//! quantile error at `1 / SUB_BUCKETS` (12.5%) while keeping recording to
//! three relaxed atomic adds — safe to hammer from any number of threads
//! with no locks and no lost increments.
//!
//! Quantiles are never read off the live atomics (a concurrent reader could
//! see a torn distribution); instead [`Histogram::snapshot`] copies the
//! non-empty buckets into an immutable [`HistogramSnapshot`] that answers
//! `p50`/`p90`/`p99` by cumulative walk.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave (8 → ≤12.5% quantile error).
const SUB_BUCKETS: u64 = 8;

/// Bucket count covering the full `u64` nanosecond range: values below
/// [`SUB_BUCKETS`] get exact singleton buckets, every octave above
/// contributes [`SUB_BUCKETS`] more, and the widest `u64` has 60 octaves
/// past the linear range (`60 * 8 + 16 = 496 < 512`).
const BUCKETS: usize = 512;

/// Maps a nanosecond value to its bucket index.
fn bucket_index(ns: u64) -> usize {
    if ns < SUB_BUCKETS {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as u64;
    let exp = msb - SUB_BUCKETS.trailing_zeros() as u64;
    (exp * SUB_BUCKETS + (ns >> exp)) as usize
}

/// The inclusive lower bound of bucket `index` (inverse of [`bucket_index`]).
fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let exp = index / SUB_BUCKETS - 1;
    let sub = index - exp * SUB_BUCKETS;
    sub << exp
}

/// The representative value reported for bucket `index`: its midpoint,
/// which halves the worst-case quantile error vs the lower bound.
fn bucket_mid(index: usize) -> u64 {
    let low = bucket_low(index);
    if (index as u64) < SUB_BUCKETS {
        return low;
    }
    let exp = index as u64 / SUB_BUCKETS - 1;
    low + (1u64 << exp) / 2
}

/// A lock-free latency histogram over log-spaced nanosecond buckets.
///
/// ```
/// use sac_telemetry::Histogram;
/// use std::time::Duration;
///
/// let h = Histogram::new();
/// for ms in 1..=100u64 {
///     h.record(Duration::from_millis(ms));
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 100);
/// // p50 lands near 50ms, within the 12.5% bucket resolution.
/// let p50 = snap.p50() as f64;
/// assert!((40_000_000.0..=60_000_000.0).contains(&p50));
/// assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
/// ```
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observed duration.
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one observed duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u16, n))
            })
            .collect();
        // A racing `record_ns` between the bucket scan and these loads can
        // only make count/total run slightly ahead of the buckets — the
        // quantile walk below clamps, so the snapshot stays well-formed.
        HistogramSnapshot {
            count: buckets.iter().map(|&(_, n)| n).sum(),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Clears all buckets and totals.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// An immutable point-in-time copy of a [`Histogram`]: non-empty buckets
/// plus totals, cheap to clone and compare (it is plain data, so it can
/// ride inside larger `Eq` metric snapshots).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations across all buckets.
    pub count: u64,
    /// Sum of all observed durations in nanoseconds.
    pub total_ns: u64,
    /// Largest single observation in nanoseconds.
    pub max_ns: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`, in nanoseconds: the
    /// representative (midpoint) value of the bucket holding the
    /// observation with rank `ceil(q * count)`, clamped to the observed
    /// maximum so high quantiles never report past `max_ns`.  Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(index as usize).min(self.max_ns);
            }
        }
        // Racing writers can leave `count` slightly ahead of the bucket
        // scan; the highest occupied bucket is the honest answer then.
        self.buckets
            .last()
            .map_or(0, |&(index, _)| bucket_mid(index as usize).min(self.max_ns))
    }

    /// Median latency in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile latency in nanoseconds.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "no samples");
        }
        write!(
            f,
            "{} samples, p50 {} / p90 {} / p99 {} / max {}",
            self.count,
            fmt_ns(self.p50()),
            fmt_ns(self.p90()),
            fmt_ns(self.p99()),
            fmt_ns(self.max_ns)
        )
    }
}

/// Formats a nanosecond duration with a human unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut last = 0usize;
        for ns in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(ns);
            assert!(idx >= last, "bucket index regressed at {ns}");
            last = idx;
            assert!(bucket_low(idx) <= ns, "low bound exceeds value at {ns}");
            if idx + 1 < BUCKETS {
                assert!(ns < bucket_low(idx + 1), "value past next bucket at {ns}");
            }
            assert!(bucket_mid(idx) >= bucket_low(idx));
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        for ns in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(ns) as u64, ns);
            assert_eq!(bucket_mid(ns as usize), ns);
        }
    }

    #[test]
    fn quantiles_track_a_uniform_distribution() {
        let h = Histogram::new();
        for ns in 1..=10_000u64 {
            h.record_ns(ns * 1_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        // Each quantile must land within the 12.5% bucket resolution.
        for (q, expect) in [(0.5, 5_000_000.0), (0.9, 9_000_000.0), (0.99, 9_900_000.0)] {
            let got = snap.quantile(q) as f64;
            assert!(
                (got - expect).abs() / expect < 0.13,
                "q{q}: got {got}, want ≈{expect}"
            );
        }
        assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
        assert!(snap.p99() <= snap.max_ns);
        assert_eq!(snap.max_ns, 10_000_000);
    }

    #[test]
    fn reset_restores_the_empty_snapshot() {
        let h = Histogram::new();
        h.record(Duration::from_micros(42));
        assert_eq!(h.count(), 1);
        assert!(h.total_ns() >= 42_000);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1_000 {
                        h.record_ns(t * 1_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 8_000);
        assert_eq!(h.count(), 8_000);
        assert_eq!(snap.max_ns, 7_999);
    }

    #[test]
    fn display_is_informative() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().to_string(), "no samples");
        h.record(Duration::from_micros(100));
        let text = h.snapshot().to_string();
        assert!(text.contains("1 samples"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn mean_tracks_the_total() {
        let h = Histogram::new();
        h.record_ns(1_000);
        h.record_ns(3_000);
        let snap = h.snapshot();
        assert_eq!(snap.total_ns, 4_000);
        assert_eq!(snap.mean_ns(), 2_000);
    }
}
