//! The existential 1-cover game of Chen & Dalmau, written `≡∃1c`.
//!
//! Theorem 25 of the paper evaluates semantically acyclic CQs under guarded
//! tgds in polynomial time by checking `chase(q,Σ) ≡∃1c D`, and Lemma 32
//! shows that for guarded Σ this is equivalent to `q ≡∃1c D`.  We implement
//! the *winning strategy* characterization of Lemma 28 as a greatest-fixpoint
//! computation:
//!
//! * a candidate for an atom `T(ā)` of the left structure is an atom
//!   `T(c̄)` of the right structure such that the positional mapping
//!   `ā ↦ c̄` is a well-defined partial homomorphism respecting the
//!   distinguished tuples;
//! * candidates are repeatedly discarded when some other left atom has no
//!   compatible candidate (condition 2 of Lemma 28);
//! * the duplicator wins iff every left atom retains at least one candidate
//!   at the fixpoint.
//!
//! The fixpoint runs in time polynomial in `|left| · |right|`, which is what
//! makes Theorem 25's evaluation algorithm tractable.

use sac_common::{Atom, Term};
use sac_storage::Instance;
use std::collections::{BTreeMap, BTreeSet};

/// The left-hand side of a cover game: a finite structure given by atoms
/// (which may contain variables — e.g. a query body) and a distinguished
/// tuple of its terms.
#[derive(Debug, Clone)]
pub struct CoverGameInput<'a> {
    /// Atoms of the left structure.
    pub atoms: &'a [Atom],
    /// Distinguished tuple `t̄` (elements of the left structure).
    pub tuple: &'a [Term],
}

/// A candidate assignment for one left atom: the right atom it maps to and
/// the induced element mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    mapping: BTreeMap<Term, Term>,
}

/// Decides `(left, t̄) ≡∃1c (right, t̄')` via the Lemma 28 fixpoint.
///
/// Distinguished tuples must have equal length; otherwise the answer is
/// `false`.
pub fn cover_equivalent(left: CoverGameInput<'_>, right: &Instance, right_tuple: &[Term]) -> bool {
    if left.tuple.len() != right_tuple.len() {
        return false;
    }
    // Pinned elements: the i-th component of the left tuple must map to the
    // i-th component of the right tuple.  If the same left element occurs at
    // two positions with different right images, the duplicator loses
    // immediately.
    let mut pinned: BTreeMap<Term, Term> = BTreeMap::new();
    for (l, r) in left.tuple.iter().zip(right_tuple.iter()) {
        match pinned.get(l) {
            Some(existing) if existing != r => return false,
            _ => {
                pinned.insert(*l, *r);
            }
        }
    }

    if left.atoms.is_empty() {
        return true;
    }

    // Initial candidate sets.
    let mut candidates: Vec<Vec<Candidate>> = left
        .atoms
        .iter()
        .map(|atom| initial_candidates(atom, right, &pinned))
        .collect();
    if candidates.iter().any(|c| c.is_empty()) {
        return false;
    }

    // Greatest fixpoint: discard candidates violating pairwise compatibility.
    loop {
        let mut changed = false;
        for i in 0..left.atoms.len() {
            let mut kept = Vec::with_capacity(candidates[i].len());
            'cand: for cand in &candidates[i] {
                for (j, other_atom) in left.atoms.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let shared: BTreeSet<Term> = left.atoms[i]
                        .terms()
                        .intersection(&other_atom.terms())
                        .copied()
                        .collect();
                    let compatible = candidates[j].iter().any(|other| {
                        shared
                            .iter()
                            .all(|t| cand.mapping.get(t) == other.mapping.get(t))
                    });
                    if !compatible {
                        changed = true;
                        continue 'cand;
                    }
                }
                kept.push(cand.clone());
            }
            if kept.is_empty() {
                return false;
            }
            candidates[i] = kept;
        }
        if !changed {
            break;
        }
    }
    true
}

/// All candidates for a single left atom: right atoms over the same predicate
/// whose positional mapping is functional, fixes constants, and respects the
/// pinned elements.
fn initial_candidates(
    atom: &Atom,
    right: &Instance,
    pinned: &BTreeMap<Term, Term>,
) -> Vec<Candidate> {
    let Some(rel) = right.relation(atom.predicate) else {
        return Vec::new();
    };
    if rel.arity() != atom.arity() {
        return Vec::new();
    }
    let mut out = Vec::new();
    'fact: for fact in rel.iter() {
        let mut mapping: BTreeMap<Term, Term> = BTreeMap::new();
        for (l, r) in atom.args.iter().zip(fact.iter()) {
            // Constants must be preserved (homomorphisms fix constants).
            if l.is_constant() && l != r {
                continue 'fact;
            }
            if let Some(p) = pinned.get(l) {
                if p != r {
                    continue 'fact;
                }
            }
            match mapping.get(l) {
                Some(existing) if existing != r => continue 'fact,
                _ => {
                    mapping.insert(*l, *r);
                }
            }
        }
        out.push(Candidate { mapping });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;
    use sac_query::{evaluate_boolean, ConjunctiveQuery};

    fn game<'a>(atoms: &'a [Atom], tuple: &'a [Term]) -> CoverGameInput<'a> {
        CoverGameInput { atoms, tuple }
    }

    #[test]
    fn acyclic_query_true_on_database_wins_the_game() {
        // q :- E(x,y), E(y,z) on a database with a 2-path.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
        ])
        .unwrap();
        let db = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
        ])
        .unwrap();
        assert!(cover_equivalent(game(&q.body, &[]), &db, &[]));
    }

    #[test]
    fn acyclic_query_false_on_database_loses_the_game() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
        ])
        .unwrap();
        // Only a single edge: no 2-path.
        let db = Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap();
        assert!(!cover_equivalent(game(&q.body, &[]), &db, &[]));
        assert!(!evaluate_boolean(&q, &db));
    }

    #[test]
    fn cyclic_query_may_win_on_a_homomorphically_equivalent_db() {
        // The triangle query wins the 1-cover game on a database containing a
        // long even cycle IF the query has a homomorphism... here it does not
        // (no triangle in a 4-cycle), but the cover game is coarser than
        // homomorphism: the duplicator can win locally.  This is exactly why
        // the game characterizes *semantically acyclic* evaluation only.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ])
        .unwrap();
        let db = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
            atom!("E", cst "c", cst "d"),
            atom!("E", cst "d", cst "a"),
        ])
        .unwrap();
        // The duplicator survives: every pebbled pair extends locally.
        assert!(cover_equivalent(game(&q.body, &[]), &db, &[]));
        // Even though the query is actually false on the database.
        assert!(!evaluate_boolean(&q, &db));
    }

    #[test]
    fn distinguished_tuples_must_be_respected() {
        let q = ConjunctiveQuery::new(
            vec![sac_common::intern("x")],
            vec![atom!("E", var "x", var "y")],
        )
        .unwrap();
        let db = Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap();
        let x = Term::variable("x");
        assert!(cover_equivalent(
            game(&q.body, &[x]),
            &db,
            &[Term::constant("a")]
        ));
        assert!(!cover_equivalent(
            game(&q.body, &[x]),
            &db,
            &[Term::constant("b")]
        ));
    }

    #[test]
    fn arity_mismatch_of_tuples_is_rejected() {
        let q = ConjunctiveQuery::boolean(vec![atom!("E", var "x", var "y")]).unwrap();
        let db = Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap();
        assert!(!cover_equivalent(
            game(&q.body, &[Term::variable("x")]),
            &db,
            &[]
        ));
    }

    #[test]
    fn constants_in_left_atoms_must_be_preserved() {
        let q = ConjunctiveQuery::boolean(vec![atom!("E", cst "a", var "y")]).unwrap();
        let db_good = Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap();
        let db_bad = Instance::from_atoms(vec![atom!("E", cst "c", cst "b")]).unwrap();
        assert!(cover_equivalent(game(&q.body, &[]), &db_good, &[]));
        assert!(!cover_equivalent(game(&q.body, &[]), &db_bad, &[]));
    }

    #[test]
    fn empty_left_structure_always_wins() {
        let db = Instance::new();
        assert!(cover_equivalent(game(&[], &[]), &db, &[]));
    }

    #[test]
    fn missing_predicate_on_the_right_loses() {
        let q = ConjunctiveQuery::boolean(vec![atom!("Z", var "x")]).unwrap();
        let db = Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap();
        assert!(!cover_equivalent(game(&q.body, &[]), &db, &[]));
    }

    #[test]
    fn game_agrees_with_evaluation_for_acyclic_queries() {
        // Proposition 30: for acyclic q, (q, x̄) ≡∃1c (D, t̄) implies t̄ ∈ q(D);
        // combined with the converse (homomorphism gives a strategy) the game
        // exactly characterizes evaluation for acyclic queries.
        let q = ConjunctiveQuery::new(
            vec![sac_common::intern("x")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let db = Instance::from_atoms(vec![
            atom!("Interest", cst "alice", cst "jazz"),
            atom!("Class", cst "kind_of_blue", cst "jazz"),
            atom!("Interest", cst "bob", cst "opera"),
        ])
        .unwrap();
        let x = Term::variable("x");
        assert!(cover_equivalent(
            game(&q.body, &[x]),
            &db,
            &[Term::constant("alice")]
        ));
        assert!(!cover_equivalent(
            game(&q.body, &[x]),
            &db,
            &[Term::constant("bob")]
        ));
    }
}
