//! The GYO (Graham / Yu–Özsoyoğlu) reduction: deciding acyclicity and
//! constructing join trees.
//!
//! An atom set is acyclic iff repeatedly removing *ears* empties it.  An atom
//! `α` is an ear witnessed by another atom `β` when every connectable term of
//! `α` that is shared with some other remaining atom also occurs in `β`;
//! removing `α` and attaching it below `β` yields a join tree when the
//! process succeeds on all atoms.

use crate::join_tree::{connectable, JoinTree};
use sac_common::{Atom, Term};
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;
use std::collections::{BTreeMap, BTreeSet};

/// Computes a join tree of `atoms`, or `None` if the atom set is cyclic.
pub fn join_tree_of_atoms(atoms: &[Atom]) -> Option<JoinTree> {
    let n = atoms.len();
    let vertex_sets: Vec<BTreeSet<Term>> = atoms
        .iter()
        .map(|a| a.terms().into_iter().filter(|t| connectable(*t)).collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut remaining = n;

    // Occurrence counts let us test "shared with some other remaining atom"
    // cheaply.
    let mut occurrence: BTreeMap<Term, usize> = BTreeMap::new();
    for vs in &vertex_sets {
        for t in vs {
            *occurrence.entry(*t).or_insert(0) += 1;
        }
    }

    while remaining > 0 {
        let mut progress = false;
        'search: for i in 0..n {
            if !alive[i] {
                continue;
            }
            // Terms of atom i that are shared with at least one other
            // remaining atom.
            let shared: BTreeSet<Term> = vertex_sets[i]
                .iter()
                .copied()
                .filter(|t| occurrence[t] > 1)
                .collect();
            if remaining == 1 {
                // Last atom standing becomes a root.
                alive[i] = false;
                remaining -= 1;
                progress = true;
                break 'search;
            }
            for j in 0..n {
                if i == j || !alive[j] {
                    continue;
                }
                if shared.is_subset(&vertex_sets[j]) {
                    parent[i] = Some(j);
                    alive[i] = false;
                    remaining -= 1;
                    for t in &vertex_sets[i] {
                        *occurrence.get_mut(t).expect("term was counted") -= 1;
                    }
                    progress = true;
                    break 'search;
                }
            }
        }
        if !progress {
            return None;
        }
    }
    Some(JoinTree::new(atoms.to_vec(), parent))
}

/// Whether a set of atoms is acyclic (admits a join tree).
pub fn is_acyclic_atoms(atoms: &[Atom]) -> bool {
    join_tree_of_atoms(atoms).is_some()
}

/// Whether a conjunctive query is acyclic: its body, viewed as an instance
/// with each variable replaced by a fresh null, admits a join tree.  Since
/// variables are "connectable" in our join-tree definition, no actual
/// freezing is needed.
pub fn is_acyclic_query(query: &ConjunctiveQuery) -> bool {
    is_acyclic_atoms(&query.body)
}

/// Whether an instance is acyclic (labelled nulls must satisfy the join-tree
/// connectivity; constants are exempt, per the paper's definition).
pub fn is_acyclic_instance(instance: &Instance) -> bool {
    is_acyclic_atoms(&instance.to_atoms())
}

/// Computes a join tree of an instance, if it is acyclic.
pub fn join_tree_of_instance(instance: &Instance) -> Option<JoinTree> {
    join_tree_of_atoms(&instance.to_atoms())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;
    use sac_common::intern;

    fn cq(atoms: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(atoms).unwrap()
    }

    #[test]
    fn path_queries_are_acyclic() {
        let q = cq(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "y", var "z"),
            atom!("T", var "z", var "w"),
        ]);
        assert!(is_acyclic_query(&q));
        let tree = join_tree_of_atoms(&q.body).unwrap();
        assert!(tree.is_valid());
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn triangle_query_is_cyclic() {
        // The Example 1 triangle: Interest(x,z), Class(y,z), Owns(x,y).
        let q = cq(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
            atom!("Owns", var "x", var "y"),
        ]);
        assert!(!is_acyclic_query(&q));
        assert!(join_tree_of_atoms(&q.body).is_none());
    }

    #[test]
    fn example1_reformulation_is_acyclic() {
        // q'(x,y) :- Interest(x,z), Class(y,z) — the paper's acyclic
        // reformulation under the collector tgd.
        let q = cq(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
        ]);
        assert!(is_acyclic_query(&q));
    }

    #[test]
    fn star_queries_are_acyclic() {
        let q = cq(vec![
            atom!("R", var "c", var "a"),
            atom!("R", var "c", var "b"),
            atom!("R", var "c", var "d"),
        ]);
        assert!(is_acyclic_query(&q));
        let tree = join_tree_of_atoms(&q.body).unwrap();
        assert!(tree.is_valid());
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let q = cq(vec![
            atom!("E", var "a", var "b"),
            atom!("E", var "b", var "c"),
            atom!("E", var "c", var "d"),
            atom!("E", var "d", var "a"),
        ]);
        assert!(!is_acyclic_query(&q));
    }

    #[test]
    fn wide_guard_atom_makes_query_acyclic() {
        // A cyclic-looking query becomes acyclic when a guard atom contains
        // all variables.
        let q = cq(vec![
            atom!("E", var "a", var "b"),
            atom!("E", var "b", var "c"),
            atom!("E", var "c", var "a"),
            atom!("G", var "a", var "b", var "c"),
        ]);
        assert!(is_acyclic_query(&q));
        let tree = join_tree_of_atoms(&q.body).unwrap();
        assert!(tree.is_valid());
    }

    #[test]
    fn acyclic_example4_query_from_paper() {
        // Example 4: R(x,y), S(x,y,z), S(x,z,w), S(x,w,v), R(x,v) is acyclic.
        let q = cq(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "x", var "y", var "z"),
            atom!("S", var "x", var "z", var "w"),
            atom!("S", var "x", var "w", var "v"),
            atom!("R", var "x", var "v"),
        ]);
        assert!(is_acyclic_query(&q));
    }

    #[test]
    fn example4_after_key_chase_is_cyclic() {
        // After applying the key R: first attribute determines the second,
        // Example 4's query becomes R(x,y), S(x,y,z), S(x,z,w), S(x,w,y)
        // which is cyclic.
        let q = cq(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "x", var "y", var "z"),
            atom!("S", var "x", var "z", var "w"),
            atom!("S", var "x", var "w", var "y"),
        ]);
        assert!(!is_acyclic_query(&q));
    }

    #[test]
    fn single_atom_and_empty_are_acyclic() {
        assert!(is_acyclic_atoms(&[]));
        assert!(is_acyclic_atoms(&[atom!("R", var "x", var "y", var "z")]));
    }

    #[test]
    fn duplicate_atoms_do_not_break_the_reduction() {
        let atoms = vec![
            atom!("R", var "x", var "y"),
            atom!("R", var "x", var "y"),
            atom!("S", var "y", var "z"),
        ];
        assert!(is_acyclic_atoms(&atoms));
    }

    #[test]
    fn ground_instances_with_constants_are_acyclic() {
        // Constants are exempt from connectivity, so any set of ground
        // constant-only atoms is acyclic.
        let inst = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
            atom!("E", cst "c", cst "a"),
        ])
        .unwrap();
        assert!(is_acyclic_instance(&inst));
    }

    #[test]
    fn instance_with_null_cycle_is_cyclic() {
        let inst = Instance::from_atoms(vec![
            atom!("E", null 1, null 2),
            atom!("E", null 2, null 3),
            atom!("E", null 3, null 1),
        ])
        .unwrap();
        assert!(!is_acyclic_instance(&inst));
        assert!(join_tree_of_instance(&inst).is_none());
    }

    #[test]
    fn produced_join_trees_are_valid_on_random_acyclic_shapes() {
        // A caterpillar: path with pendant atoms.
        let mut atoms = Vec::new();
        for i in 0..6 {
            atoms.push(Atom::from_parts(
                "E",
                vec![
                    Term::Variable(intern(&format!("p{i}"))),
                    Term::Variable(intern(&format!("p{}", i + 1))),
                ],
            ));
            atoms.push(Atom::from_parts(
                "L",
                vec![
                    Term::Variable(intern(&format!("p{i}"))),
                    Term::Variable(intern(&format!("leaf{i}"))),
                ],
            ));
        }
        let tree = join_tree_of_atoms(&atoms).expect("caterpillar is acyclic");
        assert!(tree.is_valid());
        assert_eq!(tree.len(), atoms.len());
    }
}
