//! # sac-acyclic
//!
//! Everything about *acyclicity* of conjunctive queries and instances:
//!
//! * the **join-tree** data structure (the paper's Section 2 definition of an
//!   acyclic instance is "admits a join tree"),
//! * the **GYO reduction**, which decides acyclicity and produces a join tree
//!   when one exists,
//! * the **Yannakakis algorithm**, evaluating acyclic CQs in time
//!   `O(|q|·|D|)` (plus output cost for non-Boolean queries),
//! * the **Lemma 9 compaction**: from a homomorphism of a CQ `q` into an
//!   acyclic instance `I`, extract an acyclic CQ `q'` of size `O(|q|)` with
//!   `q' ⊆ q` and `q'` satisfied in `I` — the small-witness engine behind all
//!   of the paper's decidability results,
//! * the **existential 1-cover game** `≡∃1c` of Chen & Dalmau, used by
//!   Theorem 25 to evaluate semantically acyclic CQs under guarded tgds in
//!   polynomial time.
//!
//! The GYO reduction decides acyclicity, produces the join tree, and
//! Yannakakis evaluates over it in linear time:
//!
//! ```
//! use sac_acyclic::{is_acyclic_query, join_tree_of_atoms, yannakakis_boolean};
//! use sac_query::ConjunctiveQuery;
//! use sac_storage::Instance;
//!
//! let path: ConjunctiveQuery = "q() :- E(X, Y), E(Y, Z).".parse().unwrap();
//! let triangle: ConjunctiveQuery =
//!     "q() :- E(X, Y), E(Y, Z), E(Z, X).".parse().unwrap();
//! assert!(is_acyclic_query(&path) && !is_acyclic_query(&triangle));
//!
//! let tree = join_tree_of_atoms(&path.body).expect("acyclic ⇒ join tree");
//! assert_eq!(tree.len(), 2);
//!
//! let db: Instance = "E(a, b). E(b, c).".parse().unwrap();
//! // `None` would mean "not acyclic, can't use Yannakakis".
//! assert_eq!(yannakakis_boolean(&path, &db), Some(true));
//! ```

pub mod cover_game;
pub mod gyo;
pub mod join_tree;
pub mod lemma9;
pub mod yannakakis;

pub use cover_game::{cover_equivalent, CoverGameInput};
pub use gyo::{is_acyclic_atoms, is_acyclic_instance, is_acyclic_query, join_tree_of_atoms};
pub use join_tree::JoinTree;
pub use lemma9::compact_acyclic_witness;
pub use yannakakis::{yannakakis_boolean, yannakakis_evaluate};
