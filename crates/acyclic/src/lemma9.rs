//! The Lemma 9 compaction: small acyclic witness queries.
//!
//! Lemma 9 (and its auxiliary Lemma 27) is the engine behind every
//! decidability result in the paper.  Given a CQ `q(x̄)`, an *acyclic*
//! instance `I`, and a homomorphism `h` from `q` into `I`, there exists an
//! acyclic CQ `q'(x̄)` with `q' ⊆ q`, `|q'| = O(|q|)`, and `h(x̄) ∈ q'(I)`.
//!
//! The construction: take a join tree `T` of `I`, restrict it to the nodes
//! hit by `h` and their ancestors (`T_q`), then keep only the "interesting"
//! nodes — the image nodes themselves, the roots and the branching nodes of
//! `T_q` — and reconnect them along ancestor paths.  The atoms of the kept
//! nodes, with nulls renamed to fresh variables, form `q'`.
//!
//! We keep the image nodes explicitly (the paper's Figure 3 does as well):
//! this guarantees `h` composes into a homomorphism `q → q'` and hence
//! `q' ⊆ q`.  The size bound becomes `|q'| ≤ 3·|q|` in the worst case
//! (images + branching nodes + roots), which is just as good for the
//! decidability arguments; the paper's finer bookkeeping achieves `2·|q|`.

use crate::gyo::join_tree_of_atoms;
use sac_common::{intern, Atom, Substitution, Symbol, Term};
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;
use std::collections::{BTreeMap, BTreeSet};

/// Computes a compact acyclic witness query from a homomorphism `hom` of
/// `query` into the acyclic instance `instance`.
///
/// Returns `None` if `instance` is not acyclic, or if some atom of the query
/// is not actually mapped into the instance by `hom` (i.e. `hom` is not a
/// homomorphism).
///
/// The returned query `q'` satisfies:
/// * `q'` is acyclic,
/// * `q' ⊆ query` (classically, hence under any constraints),
/// * the tuple `hom(x̄)` is an answer of `q'` on `instance`,
/// * `|q'| ≤ 3·|query|`.
pub fn compact_acyclic_witness(
    query: &ConjunctiveQuery,
    instance: &Instance,
    hom: &Substitution,
) -> Option<ConjunctiveQuery> {
    let tree = join_tree_of_atoms(&instance.to_atoms())?;
    let tree_atoms = &tree.atoms;

    // The image atoms h(α) for every body atom α; each must exist in I.
    let mut image_atoms: BTreeSet<Atom> = BTreeSet::new();
    for atom in &query.body {
        let img = hom.apply_atom(atom);
        if !instance.contains(&img) {
            return None;
        }
        image_atoms.insert(img);
    }

    // Node ids of the join tree hit by the image.
    let image_nodes: BTreeSet<usize> = (0..tree_atoms.len())
        .filter(|i| image_atoms.contains(&tree_atoms[*i]))
        .collect();

    // T_q: image nodes plus all their ancestors.
    let mut tq: BTreeSet<usize> = image_nodes.clone();
    for &n in &image_nodes {
        tq.extend(tree.ancestors(n));
    }

    // Children counts within T_q.
    let mut tq_children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &n in &tq {
        if let Some(p) = tree.parent[n] {
            if tq.contains(&p) {
                tq_children.entry(p).or_default().push(n);
            }
        }
    }

    // Kept nodes: image nodes, roots of T_q, and branching nodes of T_q.
    let mut kept: BTreeSet<usize> = image_nodes.clone();
    for &n in &tq {
        let is_root = tree.parent[n].map(|p| !tq.contains(&p)).unwrap_or(true);
        let branching = tq_children.get(&n).map(|c| c.len()).unwrap_or(0) >= 2;
        if is_root || branching {
            kept.insert(n);
        }
    }

    // J: atoms of the kept nodes.
    let j_atoms: Vec<Atom> = kept.iter().map(|n| tree_atoms[*n].clone()).collect();

    // Rename every null of J to a dedicated variable; constants are kept.
    let mut null_var: BTreeMap<u64, Symbol> = BTreeMap::new();
    let rename = |t: Term, null_var: &mut BTreeMap<u64, Symbol>| match t {
        Term::Null(n) => {
            let v = *null_var
                .entry(n)
                .or_insert_with(|| intern(&format!("w#{n}")));
            Term::Variable(v)
        }
        other => other,
    };
    let body: Vec<Atom> = j_atoms
        .iter()
        .map(|a| a.map_args(|t| rename(t, &mut null_var)))
        .collect();

    // The head: rename the image of the original head tuple.  Head terms that
    // are constants cannot become head variables of a CQ; in every use inside
    // this toolkit the head images are frozen nulls, so we simply refuse the
    // degenerate case.
    let mut head = Vec::with_capacity(query.head.len());
    for v in &query.head {
        let image = hom.apply(Term::Variable(*v));
        match rename(image, &mut null_var) {
            Term::Variable(sym) => head.push(sym),
            _ => return None,
        }
    }

    let q_prime = ConjunctiveQuery::new_unchecked(head, body);
    debug_assert!(crate::gyo::is_acyclic_query(&q_prime));
    Some(q_prime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gyo::is_acyclic_query;
    use sac_common::atom;
    use sac_query::{contained_in, evaluate, FrozenQuery};

    /// Builds an acyclic "path with decorations" instance over nulls.
    fn path_instance(n: u64) -> Instance {
        let mut inst = Instance::new();
        for i in 0..n {
            inst.insert(Atom::from_parts(
                "E",
                vec![Term::Null(i), Term::Null(i + 1)],
            ))
            .unwrap();
        }
        inst
    }

    #[test]
    fn witness_for_edge_query_is_contained_and_acyclic() {
        let q = ConjunctiveQuery::boolean(vec![atom!("E", var "x", var "y")]).unwrap();
        let inst = path_instance(5);
        let frozen = FrozenQuery::freeze(&q);
        let _ = frozen;
        let hom = sac_query::find_homomorphism(&q.body, &inst).unwrap();
        let w = compact_acyclic_witness(&q, &inst, &hom).unwrap();
        assert!(is_acyclic_query(&w));
        assert!(contained_in(&w, &q));
        assert!(!evaluate(&w, &inst).is_empty());
        assert!(w.size() <= 3 * q.size());
    }

    #[test]
    fn witness_reproduces_head_bindings() {
        // q(x) :- E(x, y), E(y, z): witness must keep x's image as an answer.
        let q = ConjunctiveQuery::new(
            vec![intern("x")],
            vec![atom!("E", var "x", var "y"), atom!("E", var "y", var "z")],
        )
        .unwrap();
        let inst = path_instance(6);
        let hom = sac_query::find_homomorphism(&q.body, &inst).unwrap();
        let expected_head = hom.apply(Term::variable("x"));
        let w = compact_acyclic_witness(&q, &inst, &hom).unwrap();
        let answers = evaluate(&w, &inst);
        assert!(answers.contains(&vec![expected_head]));
        assert!(contained_in(&w, &q));
    }

    #[test]
    fn cyclic_instance_is_rejected() {
        let mut inst = Instance::new();
        inst.insert(atom!("E", null 0, null 1)).unwrap();
        inst.insert(atom!("E", null 1, null 2)).unwrap();
        inst.insert(atom!("E", null 2, null 0)).unwrap();
        let q = ConjunctiveQuery::boolean(vec![atom!("E", var "x", var "y")]).unwrap();
        let hom = sac_query::find_homomorphism(&q.body, &inst).unwrap();
        assert!(compact_acyclic_witness(&q, &inst, &hom).is_none());
    }

    #[test]
    fn non_homomorphism_is_rejected() {
        let q = ConjunctiveQuery::boolean(vec![atom!("E", var "x", var "y")]).unwrap();
        let inst = path_instance(2);
        // A substitution that maps x, y to terms not forming an atom of I.
        let bogus = Substitution::from_pairs([
            (Term::variable("x"), Term::Null(0)),
            (Term::variable("y"), Term::Null(0)),
        ]);
        assert!(compact_acyclic_witness(&q, &inst, &bogus).is_none());
    }

    #[test]
    fn witness_size_is_linear_even_when_images_are_far_apart() {
        // Instance: a long path plus two unary markers at the far ends.  The
        // query asks for both markers; the witness must bridge them without
        // keeping the whole path.
        let n = 40;
        let mut inst = path_instance(n);
        inst.insert(atom!("Start", null 0)).unwrap();
        inst.insert(Atom::from_parts("End", vec![Term::Null(n)]))
            .unwrap();
        let q = ConjunctiveQuery::boolean(vec![atom!("Start", var "s"), atom!("End", var "e")])
            .unwrap();
        let hom = sac_query::find_homomorphism(&q.body, &inst).unwrap();
        let w = compact_acyclic_witness(&q, &inst, &hom).unwrap();
        assert!(is_acyclic_query(&w));
        assert!(contained_in(&w, &q));
        assert!(
            w.size() <= 3 * q.size(),
            "witness of size {} exceeds bound for |q| = {}",
            w.size(),
            q.size()
        );
    }

    #[test]
    fn constants_in_the_instance_are_preserved() {
        let mut inst = Instance::new();
        inst.insert(atom!("R", null 0, cst "a")).unwrap();
        let q = ConjunctiveQuery::boolean(vec![atom!("R", var "x", cst "a")]).unwrap();
        let hom = sac_query::find_homomorphism(&q.body, &inst).unwrap();
        let w = compact_acyclic_witness(&q, &inst, &hom).unwrap();
        assert!(w.body.iter().any(|a| a.args.contains(&Term::constant("a"))));
        assert!(contained_in(&w, &q));
    }
}
