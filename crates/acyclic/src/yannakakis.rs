//! The Yannakakis algorithm: evaluating acyclic CQs in linear time.
//!
//! Given an acyclic CQ and a database, we build a join tree of the query,
//! compute the match set of every node, run an upward semi-join sweep (and a
//! downward sweep for non-Boolean queries), and finally enumerate answers
//! along the reduced tree.  Boolean evaluation is `O(|q|·|D|)` up to hashing;
//! answer enumeration adds cost proportional to the output.

use crate::gyo::join_tree_of_atoms;
use crate::join_tree::JoinTree;
use sac_common::{Atom, Substitution, Symbol, Term};
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;
use std::collections::{BTreeSet, HashSet};

/// The match set of one join-tree node: the distinct variable list of its
/// atom and the tuples (projections of matching facts onto those variables).
#[derive(Debug, Clone)]
struct NodeMatches {
    vars: Vec<Symbol>,
    tuples: HashSet<Vec<Term>>,
}

impl NodeMatches {
    fn of_atom(atom: &Atom, instance: &Instance) -> NodeMatches {
        let vars: Vec<Symbol> = {
            let mut seen = BTreeSet::new();
            atom.variables_iter().filter(|v| seen.insert(*v)).collect()
        };
        let mut tuples = HashSet::new();
        if let Some(rel) = instance.relation(atom.predicate) {
            if rel.arity() == atom.arity() {
                'tuple: for fact in rel.iter() {
                    let mut s = Substitution::new();
                    for (pat, val) in atom.args.iter().zip(fact.iter()) {
                        match pat {
                            Term::Variable(v) => {
                                if !s.bind_var(*v, *val) {
                                    continue 'tuple;
                                }
                            }
                            rigid => {
                                if rigid != val {
                                    continue 'tuple;
                                }
                            }
                        }
                    }
                    tuples.insert(vars.iter().map(|v| s.get_var(*v).expect("bound")).collect());
                }
            }
        }
        NodeMatches { vars, tuples }
    }

    /// Keeps only tuples that agree with some tuple of `other` on the shared
    /// variables (a semi-join).  Returns `true` if anything was removed.
    fn semijoin(&mut self, other: &NodeMatches) -> bool {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.vars.iter().position(|u| u == v).map(|j| (i, j)))
            .collect();
        if shared.is_empty() {
            // No shared variables: the semi-join only removes everything when
            // `other` is empty.
            if other.tuples.is_empty() && !self.tuples.is_empty() {
                self.tuples.clear();
                return true;
            }
            return false;
        }
        let keys: HashSet<Vec<Term>> = other
            .tuples
            .iter()
            .map(|t| shared.iter().map(|(_, j)| t[*j]).collect())
            .collect();
        let before = self.tuples.len();
        self.tuples
            .retain(|t| keys.contains(&shared.iter().map(|(i, _)| t[*i]).collect::<Vec<_>>()));
        self.tuples.len() != before
    }
}

/// Evaluates an acyclic Boolean CQ with the Yannakakis upward sweep.
///
/// Returns `None` if the query is not acyclic (callers should fall back to
/// the generic evaluator), otherwise `Some(answer)`.
pub fn yannakakis_boolean(query: &ConjunctiveQuery, instance: &Instance) -> Option<bool> {
    let tree = join_tree_of_atoms(&query.body)?;
    let mut matches: Vec<NodeMatches> = query
        .body
        .iter()
        .map(|a| NodeMatches::of_atom(a, instance))
        .collect();
    Some(upward_sweep(&tree, &mut matches).is_some())
}

/// Evaluates an acyclic CQ completely, returning the answer set.
///
/// Returns `None` if the query is not acyclic.
pub fn yannakakis_evaluate(
    query: &ConjunctiveQuery,
    instance: &Instance,
) -> Option<BTreeSet<Vec<Term>>> {
    let tree = join_tree_of_atoms(&query.body)?;
    let mut matches: Vec<NodeMatches> = query
        .body
        .iter()
        .map(|a| NodeMatches::of_atom(a, instance))
        .collect();

    if upward_sweep(&tree, &mut matches).is_none() {
        return Some(BTreeSet::new());
    }
    downward_sweep(&tree, &mut matches);

    // Enumerate answers by a backtracking walk over the (now globally
    // consistent) reduced match sets, visiting nodes in a root-first order.
    let order = topological_order(&tree);
    let mut answers = BTreeSet::new();
    enumerate(
        &matches,
        &order,
        0,
        &mut Substitution::new(),
        &query.head,
        &mut answers,
    );
    Some(answers)
}

/// Upward (leaf-to-root) semi-join sweep.  Returns `None` if some node's match
/// set becomes empty (the query then has no answers).
fn upward_sweep(tree: &JoinTree, matches: &mut [NodeMatches]) -> Option<()> {
    let order = topological_order(tree);
    for &node in order.iter().rev() {
        for child in tree.children(node) {
            let child_matches = matches[child].clone();
            matches[node].semijoin(&child_matches);
        }
        if matches[node].tuples.is_empty() {
            return None;
        }
    }
    Some(())
}

/// Downward (root-to-leaf) semi-join sweep, making every node consistent with
/// its parent.
fn downward_sweep(tree: &JoinTree, matches: &mut [NodeMatches]) {
    let order = topological_order(tree);
    for &node in &order {
        if let Some(parent) = tree.parent[node] {
            let parent_matches = matches[parent].clone();
            matches[node].semijoin(&parent_matches);
        }
    }
}

/// Root-first ordering of the nodes (parents before children).
fn topological_order(tree: &JoinTree) -> Vec<usize> {
    let mut order = Vec::with_capacity(tree.len());
    let mut stack = tree.roots();
    while let Some(n) = stack.pop() {
        order.push(n);
        stack.extend(tree.children(n));
    }
    order
}

fn enumerate(
    matches: &[NodeMatches],
    order: &[usize],
    depth: usize,
    binding: &mut Substitution,
    head: &[Symbol],
    answers: &mut BTreeSet<Vec<Term>>,
) {
    if depth == order.len() {
        let tuple: Vec<Term> = head
            .iter()
            .map(|v| binding.apply(Term::Variable(*v)))
            .collect();
        if tuple.iter().all(|t| !t.is_variable()) {
            answers.insert(tuple);
        }
        return;
    }
    let node = order[depth];
    let nm = &matches[node];
    'tuple: for tuple in &nm.tuples {
        let mut local = binding.clone();
        for (v, t) in nm.vars.iter().zip(tuple.iter()) {
            if !local.bind_var(*v, *t) {
                continue 'tuple;
            }
        }
        enumerate(matches, order, depth + 1, &mut local, head, answers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};
    use sac_query::evaluate;

    fn music_db() -> Instance {
        Instance::from_atoms(vec![
            atom!("Interest", cst "alice", cst "jazz"),
            atom!("Interest", cst "bob", cst "rock"),
            atom!("Class", cst "kind_of_blue", cst "jazz"),
            atom!("Class", cst "nevermind", cst "rock"),
            atom!("Owns", cst "alice", cst "kind_of_blue"),
            atom!("Owns", cst "bob", cst "kind_of_blue"),
        ])
        .unwrap()
    }

    fn acyclic_query() -> ConjunctiveQuery {
        // q(x, y) :- Interest(x, z), Class(y, z)
        ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_naive_evaluation_on_acyclic_query() {
        let q = acyclic_query();
        let db = music_db();
        let fast = yannakakis_evaluate(&q, &db).expect("query is acyclic");
        let slow = evaluate(&q, &db);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn boolean_variant_agrees() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
        ])
        .unwrap();
        assert_eq!(yannakakis_boolean(&q, &music_db()), Some(true));
        let q2 =
            ConjunctiveQuery::boolean(vec![atom!("Interest", var "x", cst "classical")]).unwrap();
        assert_eq!(yannakakis_boolean(&q2, &music_db()), Some(false));
    }

    #[test]
    fn cyclic_query_is_rejected() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
            atom!("Owns", var "x", var "y"),
        ])
        .unwrap();
        assert_eq!(yannakakis_boolean(&q, &music_db()), None);
        assert!(yannakakis_evaluate(&q, &music_db()).is_none());
    }

    #[test]
    fn semijoin_filters_dangling_tuples() {
        // Path query over a path database where one branch dangles.
        let db = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
            atom!("E", cst "x", cst "y"), // dangling: y has no outgoing edge
        ])
        .unwrap();
        let q = ConjunctiveQuery::new(
            vec![intern("u")],
            vec![atom!("E", var "u", var "v"), atom!("E", var "v", var "w")],
        )
        .unwrap();
        let res = yannakakis_evaluate(&q, &db).unwrap();
        assert_eq!(res.len(), 1);
        assert!(res.contains(&vec![Term::constant("a")]));
    }

    #[test]
    fn empty_database_yields_empty_answers() {
        let q = acyclic_query();
        let db = Instance::new();
        assert_eq!(yannakakis_boolean(&q, &db), Some(false));
        assert!(yannakakis_evaluate(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn repeated_variables_within_an_atom_are_honoured() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", cst "a"),
            atom!("R", cst "a", cst "b"),
        ])
        .unwrap();
        let q =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("R", var "x", var "x")]).unwrap();
        let res = yannakakis_evaluate(&q, &db).unwrap();
        assert_eq!(res.len(), 1);
        assert!(res.contains(&vec![Term::constant("a")]));
    }

    #[test]
    fn constants_in_query_atoms_filter_matches() {
        let db = music_db();
        let q = ConjunctiveQuery::new(
            vec![intern("y")],
            vec![
                atom!("Interest", cst "alice", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let res = yannakakis_evaluate(&q, &db).unwrap();
        assert_eq!(res.len(), 1);
        assert!(res.contains(&vec![Term::constant("kind_of_blue")]));
    }

    #[test]
    fn disconnected_acyclic_query_is_a_cross_product() {
        let db = Instance::from_atoms(vec![
            atom!("A", cst "1"),
            atom!("A", cst "2"),
            atom!("B", cst "x"),
        ])
        .unwrap();
        let q = ConjunctiveQuery::new(
            vec![intern("u"), intern("v")],
            vec![atom!("A", var "u"), atom!("B", var "v")],
        )
        .unwrap();
        let res = yannakakis_evaluate(&q, &db).unwrap();
        assert_eq!(res.len(), 2);
        let slow = evaluate(&q, &db);
        assert_eq!(res, slow);
    }

    #[test]
    fn star_query_agreement_with_naive_on_larger_data() {
        let mut db = Instance::new();
        for i in 0..50 {
            db.insert(Atom::from_parts(
                "E",
                vec![
                    Term::constant(&format!("h{}", i % 5)),
                    Term::constant(&format!("t{i}")),
                ],
            ))
            .unwrap();
            db.insert(Atom::from_parts(
                "L",
                vec![Term::constant(&format!("t{i}"))],
            ))
            .unwrap();
        }
        let q = ConjunctiveQuery::new(
            vec![intern("c")],
            vec![
                atom!("E", var "c", var "l1"),
                atom!("E", var "c", var "l2"),
                atom!("L", var "l1"),
            ],
        )
        .unwrap();
        let fast = yannakakis_evaluate(&q, &db).unwrap();
        let slow = evaluate(&q, &db);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 5);
    }
}
