//! Join trees (really join *forests*, to accommodate disconnected inputs).
//!
//! A join tree of a set of atoms `A` is a forest whose nodes are labelled by
//! the atoms of `A` (one node per atom) such that for every *connectable*
//! term `t` (a variable or a labelled null — constants are exempt, exactly as
//! in the paper's definition, which only constrains nulls), the set of nodes
//! whose atom mentions `t` is connected.

use sac_common::{Atom, Term};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A join forest over a list of atoms.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// The atoms labelling the nodes; node ids are indexes into this vector.
    pub atoms: Vec<Atom>,
    /// `parent[i]` is the parent of node `i`, or `None` for roots.
    pub parent: Vec<Option<usize>>,
}

impl JoinTree {
    /// Creates a join forest from atoms and a parent vector.
    pub fn new(atoms: Vec<Atom>, parent: Vec<Option<usize>>) -> JoinTree {
        assert_eq!(atoms.len(), parent.len(), "parent vector length mismatch");
        JoinTree { atoms, parent }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The root node ids (nodes without a parent).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|i| self.parent[*i].is_none())
            .collect()
    }

    /// The children of node `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|j| self.parent[*j] == Some(i))
            .collect()
    }

    /// The set of ancestors of `i` (excluding `i` itself).
    pub fn ancestors(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.parent[i];
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent[p];
        }
        out
    }

    /// Undirected adjacency (parent-child edges).
    pub fn adjacency(&self) -> Vec<BTreeSet<usize>> {
        let mut adj = vec![BTreeSet::new(); self.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                adj[i].insert(*p);
                adj[*p].insert(i);
            }
        }
        adj
    }

    /// Checks the defining property: for every connectable term, the nodes
    /// mentioning it induce a connected subgraph, and the parent pointers are
    /// acyclic.
    pub fn is_valid(&self) -> bool {
        // Parent pointers must not create cycles.
        for i in 0..self.len() {
            let mut slow = Some(i);
            let mut seen = BTreeSet::new();
            while let Some(n) = slow {
                if !seen.insert(n) {
                    return false;
                }
                slow = self.parent[n];
            }
        }
        // Connectivity of every connectable term.
        let adj = self.adjacency();
        let mut term_nodes: BTreeMap<Term, Vec<usize>> = BTreeMap::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            for t in atom.terms() {
                if connectable(t) {
                    term_nodes.entry(t).or_default().push(i);
                }
            }
        }
        for nodes in term_nodes.values() {
            if !is_connected_within(&adj, nodes, |n| {
                self.atoms[n].terms().iter().any(|t| connectable(*t))
            }) {
                return false;
            }
        }
        true
    }
}

/// Whether a term participates in the join-tree connectivity requirement.
pub fn connectable(term: Term) -> bool {
    term.is_null() || term.is_variable()
}

/// Checks that `nodes` is connected in the subgraph of `adj` induced by
/// `nodes` themselves (the usual join-tree requirement: the path may only use
/// nodes that also contain the term — equivalently, connectivity within the
/// induced subgraph).
fn is_connected_within(
    adj: &[BTreeSet<usize>],
    nodes: &[usize],
    _node_filter: impl Fn(usize) -> bool,
) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    let node_set: BTreeSet<usize> = nodes.iter().copied().collect();
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::from([nodes[0]]);
    while let Some(n) = queue.pop_front() {
        if !seen.insert(n) {
            continue;
        }
        for m in &adj[n] {
            if node_set.contains(m) && !seen.contains(m) {
                queue.push_back(*m);
            }
        }
    }
    seen.len() == node_set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;

    #[test]
    fn valid_path_join_tree() {
        // R(x,y) - S(y,z) - T(z,w): a chain is a valid join tree.
        let atoms = vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "y", var "z"),
            atom!("T", var "z", var "w"),
        ];
        let tree = JoinTree::new(atoms, vec![None, Some(0), Some(1)]);
        assert!(tree.is_valid());
        assert_eq!(tree.roots(), vec![0]);
        assert_eq!(tree.children(0), vec![1]);
        assert_eq!(tree.ancestors(2), vec![1, 0]);
    }

    #[test]
    fn invalid_tree_breaks_connectivity() {
        // R(x,y), S(y,z), T(x,z) arranged as a path R - S - T is NOT a valid
        // join tree: x occurs in nodes 0 and 2 but not in node 1.
        let atoms = vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "y", var "z"),
            atom!("T", var "x", var "z"),
        ];
        let tree = JoinTree::new(atoms, vec![None, Some(0), Some(1)]);
        assert!(!tree.is_valid());
    }

    #[test]
    fn constants_do_not_constrain_connectivity() {
        // The constant "a" appears in two non-adjacent nodes; that is fine.
        let atoms = vec![
            atom!("R", cst "a", var "y"),
            atom!("S", var "y", var "z"),
            atom!("T", var "z", cst "a"),
        ];
        let tree = JoinTree::new(atoms, vec![None, Some(0), Some(1)]);
        assert!(tree.is_valid());
    }

    #[test]
    fn forest_with_two_roots_is_allowed() {
        let atoms = vec![atom!("R", var "x", var "y"), atom!("S", var "u")];
        let tree = JoinTree::new(atoms, vec![None, None]);
        assert!(tree.is_valid());
        assert_eq!(tree.roots().len(), 2);
    }

    #[test]
    fn cyclic_parent_pointers_are_invalid() {
        let atoms = vec![atom!("R", var "x", var "y"), atom!("S", var "y", var "z")];
        let tree = JoinTree::new(atoms, vec![Some(1), Some(0)]);
        assert!(!tree.is_valid());
    }

    #[test]
    fn empty_tree_is_valid() {
        let tree = JoinTree::new(vec![], vec![]);
        assert!(tree.is_valid());
        assert!(tree.is_empty());
    }
}
