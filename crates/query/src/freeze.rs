//! Freezing a query into its canonical database.
//!
//! Throughout the paper (Lemma 1 and onwards) a CQ `q` is turned into a
//! database by replacing each variable `x` with a fresh constant `c(x)`.
//! Crucially, "these are special constants, which are treated as nulls during
//! the chase": the egd chase may identify them, and homomorphisms from other
//! queries may map onto them.  We therefore freeze variables into *labelled
//! nulls*, which have exactly this behaviour in the rest of the toolkit, and
//! keep the bijection `x ↦ c(x)` so that answers can be related back to the
//! query's free variables.

use crate::cq::ConjunctiveQuery;
use sac_common::{Atom, Substitution, Symbol, Term};
use sac_storage::Instance;
use std::collections::BTreeMap;

/// The canonical database of a query together with the freezing bijection.
#[derive(Debug, Clone)]
pub struct FrozenQuery {
    /// The canonical database `D_q`.
    pub instance: Instance,
    /// The freezing map `x ↦ c(x)`.
    pub var_map: BTreeMap<Symbol, Term>,
    /// The frozen head tuple `c(x̄)` (respecting repetitions and order).
    pub head: Vec<Term>,
}

impl FrozenQuery {
    /// Freezes `query`, assigning null labels starting from `first_label`.
    ///
    /// Callers that will later chase the frozen instance should pass a label
    /// base that leaves room for the chase's own fresh nulls (the chase uses
    /// [`Instance::max_null_label`] to stay clear, so `0` is always safe).
    pub fn freeze_with_base(query: &ConjunctiveQuery, first_label: u64) -> FrozenQuery {
        let mut var_map: BTreeMap<Symbol, Term> = BTreeMap::new();
        for (next, v) in (first_label..).zip(query.body_variables()) {
            var_map.insert(v, Term::Null(next));
        }
        let mut instance = Instance::new();
        for atom in &query.body {
            let frozen = atom.map_args(|t| match t {
                Term::Variable(v) => var_map[&v],
                other => other,
            });
            instance
                .insert(frozen)
                .expect("query validation guarantees consistent arities");
        }
        let head = query.head.iter().map(|v| var_map[v]).collect();
        FrozenQuery {
            instance,
            var_map,
            head,
        }
    }

    /// Freezes `query` with null labels starting at 0.
    pub fn freeze(query: &ConjunctiveQuery) -> FrozenQuery {
        FrozenQuery::freeze_with_base(query, 0)
    }

    /// The substitution sending each query variable to its frozen term.
    pub fn as_substitution(&self) -> Substitution {
        Substitution::from_pairs(self.var_map.iter().map(|(v, t)| (Term::Variable(*v), *t)))
    }

    /// Maps a frozen term back to the variable it came from, if any.
    pub fn unfreeze_term(&self, term: Term) -> Option<Symbol> {
        self.var_map
            .iter()
            .find_map(|(v, t)| (*t == term).then_some(*v))
    }

    /// The frozen body as a vector of atoms (convenience).
    pub fn atoms(&self) -> Vec<Atom> {
        self.instance.to_atoms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![intern("x")],
            vec![atom!("R", var "x", var "y"), atom!("S", var "y", cst "a")],
        )
        .unwrap()
    }

    #[test]
    fn freezing_replaces_variables_with_nulls() {
        let f = FrozenQuery::freeze(&query());
        assert_eq!(f.instance.len(), 2);
        assert!(f.instance.is_ground());
        assert_eq!(f.var_map.len(), 2);
        assert_eq!(f.head.len(), 1);
        assert!(f.head[0].is_null());
    }

    #[test]
    fn constants_survive_freezing() {
        let f = FrozenQuery::freeze(&query());
        let has_const = f
            .instance
            .atoms()
            .any(|a| a.args.contains(&Term::constant("a")));
        assert!(has_const);
    }

    #[test]
    fn label_base_is_respected() {
        let f = FrozenQuery::freeze_with_base(&query(), 100);
        assert!(f.var_map.values().all(|t| t.as_null().unwrap() >= 100));
    }

    #[test]
    fn unfreeze_round_trips() {
        let f = FrozenQuery::freeze(&query());
        for (v, t) in &f.var_map {
            assert_eq!(f.unfreeze_term(*t), Some(*v));
        }
        assert_eq!(f.unfreeze_term(Term::constant("a")), None);
    }

    #[test]
    fn substitution_matches_var_map() {
        let f = FrozenQuery::freeze(&query());
        let s = f.as_substitution();
        for (v, t) in &f.var_map {
            assert_eq!(s.apply(Term::Variable(*v)), *t);
        }
    }

    #[test]
    fn shared_variables_freeze_to_the_same_null() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("R", var "y", var "x"),
        ])
        .unwrap();
        let f = FrozenQuery::freeze(&q);
        // Two atoms over exactly two nulls.
        assert_eq!(f.instance.len(), 2);
        assert_eq!(f.instance.active_domain().len(), 2);
    }
}
