//! Core computation (query minimization).
//!
//! The *core* of a CQ `q` is the unique (up to isomorphism) minimal
//! equivalent CQ `q'` — the paper's Section 1 recalls that in the absence of
//! constraints, semantic acyclicity degenerates to "the core is acyclic".
//! `sac-core` uses this module both for the constraint-free baseline and to
//! simplify candidate witness queries before testing them.
//!
//! The algorithm is the standard folding procedure: repeatedly look for an
//! endomorphism of `q` (fixing the free variables) whose image misses at
//! least one body atom, replace the body with the image, and stop when no
//! such endomorphism exists.  Each round removes at least one atom, so at
//! most `|q|` rounds are performed; each round performs an NP homomorphism
//! search, which is the unavoidable cost (core computation is NP-hard).

use crate::cq::ConjunctiveQuery;
use crate::homomorphism::HomomorphismSearch;
use sac_common::{Atom, Substitution, Term};
use sac_storage::Instance;
use std::collections::BTreeSet;

/// Computes the core of `query`.
///
/// The result is equivalent to `query` (over all instances), uses a subset of
/// its variables, and has a body that cannot be further folded.
pub fn core_of(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current: Vec<Atom> = query.dedup_atoms().body;
    while let Some(smaller) = fold_step(&query.head, &current) {
        current = smaller;
    }
    ConjunctiveQuery {
        name: query.name.clone(),
        head: query.head.clone(),
        body: current,
    }
}

/// Returns `true` if `query` is a core (no proper fold exists).
pub fn is_core(query: &ConjunctiveQuery) -> bool {
    fold_step(&query.head, &query.dedup_atoms().body).is_none()
}

/// Tries to find an endomorphism of `body` (fixing `head` variables) whose
/// image avoids at least one atom of `body`; returns the image if found.
///
/// The target side is *frozen* (variables replaced by labelled nulls) so that
/// the homomorphism engine never confuses pattern variables with the query's
/// own variables appearing as target values.
fn fold_step(head: &[sac_common::Symbol], body: &[Atom]) -> Option<Vec<Atom>> {
    // Freeze every variable of the body to a dedicated null.
    let variables: BTreeSet<sac_common::Symbol> = body.iter().flat_map(|a| a.variables()).collect();
    let var_to_null: std::collections::BTreeMap<sac_common::Symbol, Term> = variables
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, Term::Null(i as u64)))
        .collect();
    let null_to_var: std::collections::BTreeMap<u64, sac_common::Symbol> = var_to_null
        .iter()
        .map(|(v, t)| (t.as_null().expect("frozen term is a null"), *v))
        .collect();
    let freeze_atom = |a: &Atom| {
        a.map_args(|t| match t {
            Term::Variable(v) => var_to_null[&v],
            other => other,
        })
    };
    let unfreeze_atom = |a: &Atom| {
        a.map_args(|t| match t {
            Term::Null(n) => Term::Variable(null_to_var[&n]),
            other => other,
        })
    };
    // Free variables must be fixed pointwise (mapped to their own frozen
    // image).
    let fixed = Substitution::from_pairs(head.iter().map(|v| (Term::Variable(*v), var_to_null[v])));

    for dropped in body {
        // Look for an endomorphism avoiding `dropped`, i.e. into body \ {dropped}.
        let reduced_frozen: Vec<Atom> = body
            .iter()
            .filter(|a| *a != dropped)
            .map(freeze_atom)
            .collect();
        if reduced_frozen.len() == body.len() {
            continue; // duplicates already removed by dedup
        }
        let reduced_instance = Instance::from_atoms(reduced_frozen.iter().cloned())
            .expect("query body has consistent arities");
        let found = HomomorphismSearch::new(body, &reduced_instance)
            .with_initial(fixed.clone())
            .find_first();
        if let Some(h) = found {
            // The image of the body under h, mapped back to query variables.
            let image: BTreeSet<Atom> = body
                .iter()
                .map(|a| unfreeze_atom(&h.apply_atom(a)))
                .collect();
            debug_assert!(image.len() < body.len());
            return Some(image.into_iter().collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use sac_common::{atom, intern};

    #[test]
    fn core_of_a_core_is_itself() {
        // The Example 1 triangle is already a core.
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap();
        let c = core_of(&q);
        assert_eq!(c.size(), 3);
        assert!(is_core(&q));
    }

    #[test]
    fn redundant_atom_is_folded_away() {
        // q() :- E(x,y), E(x,y')   — y' can fold onto y.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "x", var "yp"),
        ])
        .unwrap();
        let c = core_of(&q);
        assert_eq!(c.size(), 1);
        assert!(equivalent(&q, &c));
    }

    #[test]
    fn boolean_path_folds_onto_single_edge_only_if_homomorphic() {
        // A Boolean 2-path E(x,y),E(y,z) is a core (no endomorphism to a single
        // edge because the middle variable is shared).
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
        ])
        .unwrap();
        assert!(is_core(&q));
    }

    #[test]
    fn directed_four_cycle_is_its_own_core() {
        // The directed 4-cycle has homomorphisms onto the 2-cycle, but the
        // 2-cycle is not a *subquery* of it, so no retraction exists: the
        // 4-cycle is a core.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x1", var "x2"),
            atom!("E", var "x2", var "x3"),
            atom!("E", var "x3", var "x4"),
            atom!("E", var "x4", var "x1"),
        ])
        .unwrap();
        let c = core_of(&q);
        assert_eq!(c.size(), 4);
        assert!(equivalent(&q, &c));
        assert!(is_core(&q));
    }

    #[test]
    fn four_cycle_with_chord_shortcut_folds() {
        // Adding the 2-cycle E(x1,x2), E(x2,x1) to the 4-cycle lets the whole
        // query retract onto that 2-cycle.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x1", var "x2"),
            atom!("E", var "x2", var "x3"),
            atom!("E", var "x3", var "x4"),
            atom!("E", var "x4", var "x1"),
            atom!("E", var "x2", var "x1"),
        ])
        .unwrap();
        let c = core_of(&q);
        assert_eq!(c.size(), 2);
        assert!(equivalent(&q, &c));
    }

    #[test]
    fn head_variables_are_not_folded() {
        // q(x, xp) :- E(x,y), E(xp,y): both x and xp are free, so the two
        // atoms cannot be identified even though their existential parts could.
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("xp")],
            vec![atom!("E", var "x", var "y"), atom!("E", var "xp", var "y")],
        )
        .unwrap();
        let c = core_of(&q);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn duplicate_atoms_are_removed() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "x", var "y"),
        ])
        .unwrap();
        assert_eq!(core_of(&q).size(), 1);
    }

    #[test]
    fn core_is_always_equivalent_to_original() {
        // A star with redundant rays plus a triangle.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "c", var "r1"),
            atom!("E", var "c", var "r2"),
            atom!("E", var "c", var "r3"),
            atom!("T", var "a", var "b"),
            atom!("T", var "b", var "a"),
        ])
        .unwrap();
        let c = core_of(&q);
        assert!(equivalent(&q, &c));
        assert!(c.size() <= q.size());
        assert_eq!(c.size(), 3); // one ray + the 2-cycle
    }
}
