//! Gaifman graphs of conjunctive queries and instances.
//!
//! The Gaifman graph has the variables (resp. terms) as nodes, with an edge
//! between two nodes whenever they occur together in some atom.  It underlies
//! the paper's connectivity notions (Proposition 5, the connecting operator)
//! and the cyclicity measurements of Examples 2, 4 and 5 (clique/grid growth
//! after chasing).

use crate::cq::ConjunctiveQuery;
use sac_common::{Atom, Symbol};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// An undirected graph over variable symbols.
#[derive(Debug, Clone, Default)]
pub struct GaifmanGraph {
    adjacency: BTreeMap<Symbol, BTreeSet<Symbol>>,
}

impl GaifmanGraph {
    /// Builds the Gaifman graph of a query.
    pub fn of_query(query: &ConjunctiveQuery) -> GaifmanGraph {
        GaifmanGraph::of_atoms(query.body.iter())
    }

    /// Builds the Gaifman graph of a set of atoms, using only the variables.
    pub fn of_atoms<'a>(atoms: impl IntoIterator<Item = &'a Atom>) -> GaifmanGraph {
        let mut g = GaifmanGraph::default();
        for atom in atoms {
            let vars: Vec<Symbol> = atom.variables().into_iter().collect();
            for v in &vars {
                g.adjacency.entry(*v).or_default();
            }
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    g.add_edge(vars[i], vars[j]);
                }
            }
        }
        g
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: Symbol, b: Symbol) {
        if a == b {
            self.adjacency.entry(a).or_default();
            return;
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Adds an isolated node.
    pub fn add_node(&mut self, a: Symbol) {
        self.adjacency.entry(a).or_default();
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.adjacency.keys().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|n| n.len()).sum::<usize>() / 2
    }

    /// The neighbours of `v`.
    pub fn neighbours(&self, v: Symbol) -> impl Iterator<Item = Symbol> + '_ {
        self.adjacency
            .get(&v)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Whether there is an edge between `a` and `b`.
    pub fn has_edge(&self, a: Symbol, b: Symbol) -> bool {
        self.adjacency.get(&a).is_some_and(|n| n.contains(&b))
    }

    /// Whether the graph is connected.  Graphs with at most one node are
    /// connected by convention.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// The connected components (as sets of nodes), in deterministic order.
    pub fn components(&self) -> Vec<BTreeSet<Symbol>> {
        let mut seen: BTreeSet<Symbol> = BTreeSet::new();
        let mut out = Vec::new();
        for start in self.adjacency.keys().copied() {
            if seen.contains(&start) {
                continue;
            }
            let mut component = BTreeSet::new();
            let mut queue = VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                if !component.insert(v) {
                    continue;
                }
                seen.insert(v);
                for n in self.neighbours(v) {
                    if !component.contains(&n) {
                        queue.push_back(n);
                    }
                }
            }
            out.push(component);
        }
        out
    }

    /// Returns `true` if the nodes in `clique` are pairwise adjacent.
    pub fn contains_clique(&self, clique: &[Symbol]) -> bool {
        for i in 0..clique.len() {
            for j in (i + 1)..clique.len() {
                if !self.has_edge(clique[i], clique[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// The size of the largest clique found greedily (a lower bound on the
    /// clique number, adequate for the Example 2 measurements where the clique
    /// is explicit).
    pub fn greedy_clique_lower_bound(&self) -> usize {
        let mut best = usize::from(self.node_count() > 0);
        for v in self.nodes() {
            let mut clique = vec![v];
            for u in self.neighbours(v) {
                if clique.iter().all(|w| self.has_edge(u, *w)) {
                    clique.push(u);
                }
            }
            best = best.max(clique.len());
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    #[test]
    fn triangle_query_yields_triangle_graph() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "y", var "z"),
            atom!("T", var "z", var "x"),
        ])
        .unwrap();
        let g = q.gaifman_graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_connected());
        assert!(g.contains_clique(&[intern("x"), intern("y"), intern("z")]));
    }

    #[test]
    fn path_query_is_connected_but_not_clique() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("R", var "y", var "z"),
        ])
        .unwrap();
        let g = q.gaifman_graph();
        assert!(g.is_connected());
        assert!(!g.has_edge(intern("x"), intern("z")));
        assert_eq!(g.greedy_clique_lower_bound(), 2);
    }

    #[test]
    fn disconnected_components_are_detected() {
        let q = ConjunctiveQuery::boolean(vec![atom!("R", var "x", var "y"), atom!("S", var "u")])
            .unwrap();
        let g = q.gaifman_graph();
        assert!(!g.is_connected());
        assert_eq!(g.components().len(), 2);
    }

    #[test]
    fn atom_with_single_variable_contributes_isolated_node() {
        let g = GaifmanGraph::of_atoms([&atom!("S", var "u", cst "a")]);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn wide_atom_creates_clique_among_its_variables() {
        let g = GaifmanGraph::of_atoms([&atom!("R", var "a", var "b", var "c", var "d")]);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.greedy_clique_lower_bound(), 4);
    }

    #[test]
    fn self_loop_edges_are_ignored() {
        let mut g = GaifmanGraph::default();
        g.add_edge(intern("x"), intern("x"));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
