//! Naive CQ evaluation by homomorphism enumeration.
//!
//! `evaluate(q, I)` computes `q(I)` exactly as defined in Section 2: the set
//! of tuples `h(x̄)` over the target's domain, for `h` ranging over the
//! homomorphisms from `q` to `I`.  This is the general-purpose (NP-hard in
//! combined complexity) evaluator; the linear-time evaluator for *acyclic*
//! CQs lives in `sac-acyclic` (Yannakakis), and the PTIME evaluator for
//! semantically acyclic CQs under guarded tgds lives in `sac-core`
//! (cover-game based, Theorem 25).

use crate::cq::ConjunctiveQuery;
use crate::homomorphism::HomomorphismSearch;
use sac_common::Term;
use sac_storage::Instance;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Evaluates `query` over `instance`, returning the set of answer tuples.
///
/// For a Boolean query the result is either `{()}` (the empty tuple) when the
/// query holds, or `{}` when it does not — mirroring the standard convention.
pub fn evaluate(query: &ConjunctiveQuery, instance: &Instance) -> BTreeSet<Vec<Term>> {
    let mut answers = BTreeSet::new();
    HomomorphismSearch::new(&query.body, instance).for_each(|h| {
        let tuple: Vec<Term> = query
            .head
            .iter()
            .map(|v| h.apply(Term::Variable(*v)))
            .collect();
        answers.insert(tuple);
        ControlFlow::Continue(())
    });
    answers
}

/// Evaluates a Boolean query (or the Boolean shadow of a non-Boolean one):
/// returns `true` iff at least one homomorphism exists.
pub fn evaluate_boolean(query: &ConjunctiveQuery, instance: &Instance) -> bool {
    HomomorphismSearch::new(&query.body, instance).exists()
}

/// Checks whether a specific tuple belongs to `query(instance)`.
pub fn contains_answer(query: &ConjunctiveQuery, instance: &Instance, tuple: &[Term]) -> bool {
    if tuple.len() != query.head.len() {
        return false;
    }
    let mut initial = sac_common::Substitution::new();
    for (v, t) in query.head.iter().zip(tuple.iter()) {
        if !initial.bind_var(*v, *t) {
            return false;
        }
    }
    HomomorphismSearch::new(&query.body, instance)
        .with_initial(initial)
        .exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern, Atom};

    fn db() -> Instance {
        Instance::from_atoms(vec![
            atom!("Interest", cst "alice", cst "jazz"),
            atom!("Interest", cst "bob", cst "rock"),
            atom!("Class", cst "kind_of_blue", cst "jazz"),
            atom!("Class", cst "nevermind", cst "rock"),
            atom!("Owns", cst "alice", cst "kind_of_blue"),
        ])
        .unwrap()
    }

    fn example1_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example1_returns_only_owned_matching_records() {
        let answers = evaluate(&example1_query(), &db());
        assert_eq!(answers.len(), 1);
        let expected = vec![Term::constant("alice"), Term::constant("kind_of_blue")];
        assert!(answers.contains(&expected));
    }

    #[test]
    fn boolean_evaluation() {
        let q = ConjunctiveQuery::boolean(vec![atom!("Owns", var "x", var "y")]).unwrap();
        assert!(evaluate_boolean(&q, &db()));
        let q2 = ConjunctiveQuery::boolean(vec![atom!("Owns", cst "bob", var "y")]).unwrap();
        assert!(!evaluate_boolean(&q2, &db()));
    }

    #[test]
    fn boolean_query_answer_set_is_empty_tuple_or_nothing() {
        let q = ConjunctiveQuery::boolean(vec![atom!("Owns", var "x", var "y")]).unwrap();
        let answers = evaluate(&q, &db());
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&Vec::new()));
    }

    #[test]
    fn contains_answer_checks_specific_tuples() {
        let q = example1_query();
        assert!(contains_answer(
            &q,
            &db(),
            &[Term::constant("alice"), Term::constant("kind_of_blue")]
        ));
        assert!(!contains_answer(
            &q,
            &db(),
            &[Term::constant("bob"), Term::constant("nevermind")]
        ));
        // Wrong arity.
        assert!(!contains_answer(&q, &db(), &[Term::constant("alice")]));
    }

    #[test]
    fn repeated_head_variables_produce_repeated_columns() {
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("x")],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap();
        let answers = evaluate(&q, &db());
        assert_eq!(answers.len(), 1);
        let t = answers.iter().next().unwrap();
        assert_eq!(t[0], t[1]);
    }

    #[test]
    fn evaluation_over_empty_instance() {
        let q = example1_query();
        let empty = Instance::new();
        assert!(evaluate(&q, &empty).is_empty());
        assert!(!evaluate_boolean(&q, &empty));
    }

    #[test]
    fn projection_deduplicates_answers() {
        let mut inst = Instance::new();
        for i in 0..5 {
            inst.insert(Atom::from_parts(
                "R",
                vec![Term::constant("hub"), Term::constant(&format!("v{i}"))],
            ))
            .unwrap();
        }
        let q =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("R", var "x", var "y")]).unwrap();
        assert_eq!(evaluate(&q, &inst).len(), 1);
    }
}
