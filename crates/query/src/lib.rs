//! # sac-query
//!
//! Conjunctive queries (CQs) and unions of conjunctive queries (UCQs),
//! together with the machinery the paper's Section 2 relies on:
//!
//! * the **Gaifman graph** of a query and connectivity notions (used by the
//!   connecting operator and by Proposition 5),
//! * **freezing** a query into its canonical database (the `c(x)` construction
//!   used throughout the paper, Lemma 1 in particular),
//! * a backtracking **homomorphism engine** with greedy join ordering, the
//!   workhorse behind evaluation, containment and the chase,
//! * classical (constraint-free) **containment**, **equivalence** and **core**
//!   computation — the baseline against which semantic acyclicity under
//!   constraints is compared (a CQ is semantically acyclic in the absence of
//!   constraints iff its core is acyclic).
//!
//! Queries parse from the workspace's Datalog-style text and evaluate
//! against any [`sac_storage::Instance`]:
//!
//! ```
//! use sac_query::{contained_in, core_of, evaluate, ConjunctiveQuery};
//! use sac_storage::Instance;
//!
//! let q: ConjunctiveQuery = "q(X, Z) :- E(X, Y), E(Y, Z).".parse().unwrap();
//! let db: Instance = "E(a, b). E(b, c).".parse().unwrap();
//! assert_eq!(evaluate(&q, &db).len(), 1); // the single 2-path (a, c)
//!
//! // A redundant atom folds away in the core, and the core is equivalent:
//! let r: ConjunctiveQuery = "q(X) :- E(X, Y), E(X, Y2).".parse().unwrap();
//! let core = core_of(&r);
//! assert_eq!(core.size(), 1);
//! assert!(contained_in(&r, &core) && contained_in(&core, &r));
//! ```

pub mod containment;
pub mod cq;
pub mod evaluate;
pub mod freeze;
pub mod gaifman;
pub mod homomorphism;
pub mod minimize;
pub mod ucq;

pub use containment::{contained_in, equivalent};
pub use cq::ConjunctiveQuery;
pub use evaluate::{evaluate, evaluate_boolean};
pub use freeze::FrozenQuery;
pub use gaifman::GaifmanGraph;
pub use homomorphism::{all_homomorphisms, find_homomorphism, HomomorphismSearch};
pub use minimize::core_of;
pub use ucq::UnionOfConjunctiveQueries;
