//! # sac-query
//!
//! Conjunctive queries (CQs) and unions of conjunctive queries (UCQs),
//! together with the machinery the paper's Section 2 relies on:
//!
//! * the **Gaifman graph** of a query and connectivity notions (used by the
//!   connecting operator and by Proposition 5),
//! * **freezing** a query into its canonical database (the `c(x)` construction
//!   used throughout the paper, Lemma 1 in particular),
//! * a backtracking **homomorphism engine** with greedy join ordering, the
//!   workhorse behind evaluation, containment and the chase,
//! * classical (constraint-free) **containment**, **equivalence** and **core**
//!   computation — the baseline against which semantic acyclicity under
//!   constraints is compared (a CQ is semantically acyclic in the absence of
//!   constraints iff its core is acyclic).

pub mod containment;
pub mod cq;
pub mod evaluate;
pub mod freeze;
pub mod gaifman;
pub mod homomorphism;
pub mod minimize;
pub mod ucq;

pub use containment::{contained_in, equivalent};
pub use cq::ConjunctiveQuery;
pub use evaluate::{evaluate, evaluate_boolean};
pub use freeze::FrozenQuery;
pub use gaifman::GaifmanGraph;
pub use homomorphism::{all_homomorphisms, find_homomorphism, HomomorphismSearch};
pub use minimize::core_of;
pub use ucq::UnionOfConjunctiveQueries;
