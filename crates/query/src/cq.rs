//! The conjunctive query data model.

use crate::gaifman::GaifmanGraph;
use sac_common::{Atom, Error, Result, Schema, Symbol, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A conjunctive query
/// `q(x̄) := ∃ȳ (R1(v̄1) ∧ … ∧ Rm(v̄m))`.
///
/// * `head` is the tuple `x̄` of free (answer) variables, possibly with
///   repetitions;
/// * `body` is the list of atoms.
///
/// A query with an empty head is *Boolean*.  Body atoms may contain constants
/// but not nulls (nulls only ever appear in instances).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// Optional human-readable name (used by parsers/pretty printers).
    pub name: Option<String>,
    /// The free variables `x̄`, in answer-tuple order.
    pub head: Vec<Symbol>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a query after validating it (see [`ConjunctiveQuery::validate`]).
    pub fn new(head: Vec<Symbol>, body: Vec<Atom>) -> Result<ConjunctiveQuery> {
        let q = ConjunctiveQuery {
            name: None,
            head,
            body,
        };
        q.validate()?;
        Ok(q)
    }

    /// Creates a Boolean query.
    pub fn boolean(body: Vec<Atom>) -> Result<ConjunctiveQuery> {
        ConjunctiveQuery::new(Vec::new(), body)
    }

    /// Creates a query without validation.  Intended for internal
    /// constructions that are correct by design (e.g. the Lemma 9 compaction,
    /// which introduces its own variables).
    pub fn new_unchecked(head: Vec<Symbol>, body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: None,
            head,
            body,
        }
    }

    /// Sets a display name, builder-style.
    pub fn named(mut self, name: &str) -> ConjunctiveQuery {
        self.name = Some(name.to_owned());
        self
    }

    /// Validates the structural requirements of Section 2:
    /// * body atoms contain no nulls,
    /// * every head variable occurs in some body atom,
    /// * every predicate is used with a consistent arity.
    pub fn validate(&self) -> Result<()> {
        for atom in &self.body {
            if atom.args.iter().any(|t| t.is_null()) {
                return Err(Error::Malformed(format!(
                    "query atom {atom} contains a labelled null"
                )));
            }
        }
        let body_vars = self.body_variables();
        for v in &self.head {
            if !body_vars.contains(v) {
                return Err(Error::Malformed(format!(
                    "head variable {v} does not occur in the body"
                )));
            }
        }
        Schema::induced_by(self.body.iter())?;
        Ok(())
    }

    /// Whether the query is Boolean (no free variables).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Number of body atoms, written `|q|` in the paper.
    pub fn size(&self) -> usize {
        self.body.len()
    }

    /// All variables occurring in the body.
    pub fn body_variables(&self) -> BTreeSet<Symbol> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }

    /// The distinct free variables (head variables).
    pub fn free_variables(&self) -> BTreeSet<Symbol> {
        self.head.iter().copied().collect()
    }

    /// The existentially quantified variables `ȳ` (body minus head).
    pub fn existential_variables(&self) -> BTreeSet<Symbol> {
        let free = self.free_variables();
        self.body_variables()
            .into_iter()
            .filter(|v| !free.contains(v))
            .collect()
    }

    /// All constants occurring in the body.
    pub fn constants(&self) -> BTreeSet<Symbol> {
        self.body.iter().flat_map(|a| a.constants()).collect()
    }

    /// Predicates used by the query.
    pub fn predicates(&self) -> BTreeSet<Symbol> {
        self.body.iter().map(|a| a.predicate).collect()
    }

    /// The schema induced by the query body.
    pub fn schema(&self) -> Schema {
        Schema::induced_by(self.body.iter()).expect("validated query has consistent arities")
    }

    /// The Gaifman graph of the query (nodes = variables, edges = co-occurrence
    /// in some atom).
    pub fn gaifman_graph(&self) -> GaifmanGraph {
        GaifmanGraph::of_query(self)
    }

    /// Whether the query is connected, i.e. its Gaifman graph is connected
    /// (queries with at most one variable count as connected).
    pub fn is_connected(&self) -> bool {
        self.gaifman_graph().is_connected()
    }

    /// Splits the query into its maximally connected subqueries
    /// (Proposition 5 / Lemma 26 in the paper).  Atoms without variables each
    /// form their own component.  Head variables are retained in the component
    /// in which they occur.
    pub fn connected_components(&self) -> Vec<ConjunctiveQuery> {
        let graph = self.gaifman_graph();
        let var_components = graph.components();
        let mut used = vec![false; self.body.len()];
        let mut out = Vec::new();
        for component in &var_components {
            let mut atoms = Vec::new();
            for (i, atom) in self.body.iter().enumerate() {
                if used[i] {
                    continue;
                }
                if atom.variables().iter().any(|v| component.contains(v)) {
                    atoms.push(atom.clone());
                    used[i] = true;
                }
            }
            if atoms.is_empty() {
                continue;
            }
            let head: Vec<Symbol> = self
                .head
                .iter()
                .copied()
                .filter(|v| component.contains(v))
                .collect();
            out.push(ConjunctiveQuery::new_unchecked(head, atoms));
        }
        // Variable-free atoms form singleton components.
        for (i, atom) in self.body.iter().enumerate() {
            if !used[i] {
                out.push(ConjunctiveQuery::new_unchecked(
                    Vec::new(),
                    vec![atom.clone()],
                ));
            }
        }
        out
    }

    /// The conjunction `q ∧ q'` of two Boolean queries (used by
    /// Proposition 5).  The caller is responsible for ensuring the two
    /// queries do not share variables if disjointness is intended.
    pub fn conjoin(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let mut head = self.head.clone();
        head.extend(other.head.iter().copied());
        let mut body = self.body.clone();
        body.extend(other.body.iter().cloned());
        ConjunctiveQuery::new_unchecked(head, body)
    }

    /// Renames every variable with the supplied function, head and body alike.
    pub fn rename_variables(&self, mut f: impl FnMut(Symbol) -> Symbol) -> ConjunctiveQuery {
        let head = self.head.iter().map(|v| f(*v)).collect();
        let body = self
            .body
            .iter()
            .map(|a| {
                a.map_args(|t| match t {
                    Term::Variable(v) => Term::Variable(f(v)),
                    other => other,
                })
            })
            .collect();
        ConjunctiveQuery {
            name: self.name.clone(),
            head,
            body,
        }
    }

    /// Renames all variables by appending `suffix`, producing a query with no
    /// variables in common with the original (as required e.g. by
    /// Proposition 5 and the connecting operator).
    pub fn with_variable_suffix(&self, suffix: &str) -> ConjunctiveQuery {
        self.rename_variables(|v| sac_common::intern(&format!("{}{}", v.as_str(), suffix)))
    }

    /// Returns a copy without duplicate body atoms.
    pub fn dedup_atoms(&self) -> ConjunctiveQuery {
        let mut seen = BTreeSet::new();
        let body: Vec<Atom> = self
            .body
            .iter()
            .filter(|a| seen.insert((*a).clone()))
            .cloned()
            .collect();
        ConjunctiveQuery {
            name: self.name.clone(),
            head: self.head.clone(),
            body,
        }
    }
}

/// Builds a query from a raw `head :- body.` statement (the semantic step
/// shared by [`std::str::FromStr`] and `sac-parser`): head arguments must
/// all be variables, and the head predicate becomes the display name.
impl TryFrom<sac_common::RawStatement> for ConjunctiveQuery {
    type Error = Error;

    fn try_from(statement: sac_common::RawStatement) -> Result<ConjunctiveQuery> {
        match statement {
            sac_common::RawStatement::Rule {
                head,
                body,
                negated,
            } => {
                if !negated.is_empty() {
                    return Err(Error::Malformed(format!(
                        "conjunctive queries cannot use negation (`not {}`); \
                         negated literals belong to Datalog rules",
                        negated[0]
                    )));
                }
                let head_vars: Result<Vec<Symbol>> = head
                    .args
                    .iter()
                    .map(|t| {
                        t.as_variable().ok_or_else(|| {
                            Error::Malformed(format!(
                                "query heads may only contain variables, found `{t}`"
                            ))
                        })
                    })
                    .collect();
                Ok(ConjunctiveQuery::new(head_vars?, body)?.named(&head.predicate.as_str()))
            }
            other => Err(Error::Malformed(format!(
                "expected a query, found a {}",
                other.kind()
            ))),
        }
    }
}

/// Parses the textual form `name(X, …) :- atom, …, atom.` (see
/// [`sac_common::syntax`]), so `"q(X) :- R(X, Y).".parse::<ConjunctiveQuery>()`
/// works anywhere without going through `sac-parser`.
impl std::str::FromStr for ConjunctiveQuery {
    type Err = Error;

    fn from_str(s: &str) -> Result<ConjunctiveQuery> {
        sac_common::syntax::parse_statement(s)?.try_into()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.name.as_deref().unwrap_or("q");
        write!(f, "{name}(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    #[test]
    fn from_str_parses_and_names_queries() {
        let q: ConjunctiveQuery = "q2(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y)."
            .parse()
            .unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.name.as_deref(), Some("q2"));
    }

    #[test]
    fn from_str_rejects_non_queries_and_constant_heads() {
        assert!("R(a, b).".parse::<ConjunctiveQuery>().is_err());
        assert!("R(X) -> S(X).".parse::<ConjunctiveQuery>().is_err());
        assert!("q(a) :- R(a).".parse::<ConjunctiveQuery>().is_err());
        assert!("q(X) :- R(X). q(Y) :- R(Y)."
            .parse::<ConjunctiveQuery>()
            .is_err());
    }

    /// The cyclic triangle query of Example 1:
    /// `q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)`.
    pub fn example1_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let q = example1_query();
        assert_eq!(q.size(), 3);
        assert!(!q.is_boolean());
        assert_eq!(q.free_variables().len(), 2);
        assert_eq!(q.existential_variables().len(), 1);
        assert_eq!(q.body_variables().len(), 3);
        assert_eq!(q.predicates().len(), 3);
        assert!(q.constants().is_empty());
    }

    #[test]
    fn validation_rejects_unsafe_head() {
        let bad = ConjunctiveQuery::new(vec![intern("w")], vec![atom!("R", var "x", var "y")]);
        assert!(bad.is_err());
    }

    #[test]
    fn validation_rejects_nulls_in_body() {
        let bad = ConjunctiveQuery::boolean(vec![atom!("R", null 1, var "x")]);
        assert!(bad.is_err());
    }

    #[test]
    fn validation_rejects_inconsistent_arities() {
        let bad =
            ConjunctiveQuery::boolean(vec![atom!("R", var "x"), atom!("R", var "x", var "y")]);
        assert!(bad.is_err());
    }

    #[test]
    fn connectivity_of_example1() {
        let q = example1_query();
        assert!(q.is_connected());
        assert_eq!(q.connected_components().len(), 1);
    }

    #[test]
    fn disconnected_query_splits_into_components() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "u", var "v"),
        ])
        .unwrap();
        assert!(!q.is_connected());
        let comps = q.connected_components();
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.size() == 1));
    }

    #[test]
    fn variable_free_atoms_are_their_own_components() {
        let q = ConjunctiveQuery::boolean(vec![atom!("R", cst "a", cst "b"), atom!("S", var "x")])
            .unwrap();
        assert_eq!(q.connected_components().len(), 2);
    }

    #[test]
    fn conjoin_concatenates() {
        let q1 = ConjunctiveQuery::boolean(vec![atom!("R", var "x", var "y")]).unwrap();
        let q2 = ConjunctiveQuery::boolean(vec![atom!("S", var "u")]).unwrap();
        let q = q1.conjoin(&q2);
        assert_eq!(q.size(), 2);
        assert!(q.is_boolean());
    }

    #[test]
    fn renaming_with_suffix_disjoins_variables() {
        let q = example1_query();
        let renamed = q.with_variable_suffix("_2");
        let shared: Vec<_> = q
            .body_variables()
            .intersection(&renamed.body_variables())
            .cloned()
            .collect();
        assert!(shared.is_empty());
        assert_eq!(renamed.size(), q.size());
        assert_eq!(renamed.head.len(), q.head.len());
    }

    #[test]
    fn dedup_removes_duplicate_atoms() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("R", var "x", var "y"),
            atom!("S", var "x"),
        ])
        .unwrap();
        assert_eq!(q.dedup_atoms().size(), 2);
    }

    #[test]
    fn display_is_rule_like() {
        let q = example1_query().named("q1");
        let s = format!("{q}");
        assert!(s.starts_with("q1(x, y) :- "));
        assert!(s.contains("Interest(?x, ?z)"));
    }
}
