//! Unions of conjunctive queries (UCQs).
//!
//! Section 5 of the paper uses UCQ *rewritings* of a CQ under non-recursive
//! or sticky tgds, and Section 8.1 extends semantic acyclicity itself to UCQ
//! inputs.  This module provides the shared data model: a list of CQ
//! disjuncts with the same answer arity, evaluation as the union of the
//! disjunct answers, and the classical containment tests.

use crate::containment::contained_in;
use crate::cq::ConjunctiveQuery;
use crate::evaluate::evaluate;
use sac_common::{Error, Result, Term};
use sac_storage::Instance;
use std::collections::BTreeSet;
use std::fmt;

/// A union of conjunctive queries `Q(x̄) = q1(x̄) ∨ … ∨ qn(x̄)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionOfConjunctiveQueries {
    /// The disjuncts.  All share the same head arity.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfConjunctiveQueries {
    /// Creates a UCQ, checking that all disjuncts have the same head arity
    /// and that at least one disjunct is present.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Result<UnionOfConjunctiveQueries> {
        if disjuncts.is_empty() {
            return Err(Error::Malformed("a UCQ needs at least one disjunct".into()));
        }
        let arity = disjuncts[0].head.len();
        if disjuncts.iter().any(|q| q.head.len() != arity) {
            return Err(Error::Malformed(
                "all UCQ disjuncts must have the same head arity".into(),
            ));
        }
        Ok(UnionOfConjunctiveQueries { disjuncts })
    }

    /// Wraps a single CQ as a one-disjunct UCQ.
    pub fn single(query: ConjunctiveQuery) -> UnionOfConjunctiveQueries {
        UnionOfConjunctiveQueries {
            disjuncts: vec![query],
        }
    }

    /// The common head arity.
    pub fn head_arity(&self) -> usize {
        self.disjuncts[0].head.len()
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Always false (construction requires at least one disjunct); provided
    /// for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// The *height* of the UCQ: the maximal size (number of atoms) of a
    /// disjunct.  This is the quantity `f_C(q, Σ)` bounds in Section 5 and
    /// the quantity measured by experiment E5 (Example 3).
    pub fn height(&self) -> usize {
        self.disjuncts.iter().map(|q| q.size()).max().unwrap_or(0)
    }

    /// Evaluates the UCQ: the union of the disjuncts' answer sets.
    pub fn evaluate(&self, instance: &Instance) -> BTreeSet<Vec<Term>> {
        let mut out = BTreeSet::new();
        for q in &self.disjuncts {
            out.extend(evaluate(q, instance));
        }
        out
    }

    /// Boolean evaluation.
    pub fn evaluate_boolean(&self, instance: &Instance) -> bool {
        self.disjuncts
            .iter()
            .any(|q| crate::evaluate::evaluate_boolean(q, instance))
    }

    /// Classical containment of a CQ in this UCQ: `q ⊆ Q` iff `q ⊆ qi` for
    /// some disjunct `qi` (by the Sagiv–Yannakakis argument for UCQs).
    pub fn contains_cq(&self, q: &ConjunctiveQuery) -> bool {
        self.disjuncts.iter().any(|qi| contained_in(q, qi))
    }

    /// Classical containment of UCQs: `self ⊆ other` iff every disjunct of
    /// `self` is contained in some disjunct of `other`.
    pub fn contained_in(&self, other: &UnionOfConjunctiveQueries) -> bool {
        self.disjuncts.iter().all(|q| other.contains_cq(q))
    }

    /// Classical equivalence of UCQs.
    pub fn equivalent(&self, other: &UnionOfConjunctiveQueries) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }

    /// Removes disjuncts that are classically contained in another disjunct
    /// (keeping the first of any mutually-equivalent group).
    pub fn remove_redundant_disjuncts(&self) -> UnionOfConjunctiveQueries {
        let mut kept: Vec<ConjunctiveQuery> = Vec::new();
        for (i, q) in self.disjuncts.iter().enumerate() {
            let redundant = self.disjuncts.iter().enumerate().any(|(j, other)| {
                if i == j {
                    return false;
                }
                // q ⊆ other, and not (other ⊆ q with j > i) to keep one
                // representative of equivalence classes.
                contained_in(q, other) && (!contained_in(other, q) || j < i)
            });
            if !redundant {
                kept.push(q.clone());
            }
        }
        UnionOfConjunctiveQueries { disjuncts: kept }
    }
}

impl fmt::Display for UnionOfConjunctiveQueries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f, " ∨")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn edge_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(vec![intern("x")], vec![atom!("E", var "x", var "y")]).unwrap()
    }

    fn vertex_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(vec![intern("x")], vec![atom!("V", var "x")]).unwrap()
    }

    #[test]
    fn construction_requires_matching_arities() {
        let boolean = ConjunctiveQuery::boolean(vec![atom!("V", var "x")]).unwrap();
        assert!(UnionOfConjunctiveQueries::new(vec![edge_query(), boolean]).is_err());
        assert!(UnionOfConjunctiveQueries::new(vec![]).is_err());
        assert!(UnionOfConjunctiveQueries::new(vec![edge_query(), vertex_query()]).is_ok());
    }

    #[test]
    fn evaluation_is_union_of_disjuncts() {
        let ucq = UnionOfConjunctiveQueries::new(vec![edge_query(), vertex_query()]).unwrap();
        let db =
            Instance::from_atoms(vec![atom!("E", cst "a", cst "b"), atom!("V", cst "c")]).unwrap();
        let answers = ucq.evaluate(&db);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Term::constant("a")]));
        assert!(answers.contains(&vec![Term::constant("c")]));
        assert!(ucq.evaluate_boolean(&db));
    }

    #[test]
    fn height_is_max_disjunct_size() {
        let big = ConjunctiveQuery::new(
            vec![intern("x")],
            vec![
                atom!("E", var "x", var "y"),
                atom!("E", var "y", var "z"),
                atom!("E", var "z", var "w"),
            ],
        )
        .unwrap();
        let ucq = UnionOfConjunctiveQueries::new(vec![edge_query(), big]).unwrap();
        assert_eq!(ucq.height(), 3);
    }

    #[test]
    fn cq_containment_in_ucq() {
        let two_step = ConjunctiveQuery::new(
            vec![intern("x")],
            vec![atom!("E", var "x", var "y"), atom!("E", var "y", var "z")],
        )
        .unwrap();
        let ucq = UnionOfConjunctiveQueries::new(vec![edge_query(), vertex_query()]).unwrap();
        assert!(ucq.contains_cq(&two_step)); // two_step ⊆ edge_query
        let unrelated =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("W", var "x")]).unwrap();
        assert!(!ucq.contains_cq(&unrelated));
    }

    #[test]
    fn ucq_containment_and_equivalence() {
        let ucq1 = UnionOfConjunctiveQueries::new(vec![edge_query()]).unwrap();
        let ucq2 = UnionOfConjunctiveQueries::new(vec![edge_query(), vertex_query()]).unwrap();
        assert!(ucq1.contained_in(&ucq2));
        assert!(!ucq2.contained_in(&ucq1));
        assert!(!ucq1.equivalent(&ucq2));
        assert!(ucq2.equivalent(&ucq2));
    }

    #[test]
    fn redundant_disjuncts_are_removed() {
        let two_step = ConjunctiveQuery::new(
            vec![intern("x")],
            vec![atom!("E", var "x", var "y"), atom!("E", var "y", var "z")],
        )
        .unwrap();
        let ucq =
            UnionOfConjunctiveQueries::new(vec![edge_query(), two_step, vertex_query()]).unwrap();
        let reduced = ucq.remove_redundant_disjuncts();
        assert_eq!(reduced.len(), 2);
        // Duplicated disjuncts collapse to one.
        let dup = UnionOfConjunctiveQueries::new(vec![edge_query(), edge_query()]).unwrap();
        assert_eq!(dup.remove_redundant_disjuncts().len(), 1);
    }

    #[test]
    fn single_wraps_one_disjunct() {
        let ucq = UnionOfConjunctiveQueries::single(edge_query());
        assert_eq!(ucq.len(), 1);
        assert_eq!(ucq.head_arity(), 1);
    }
}
