//! Classical (constraint-free) CQ containment and equivalence.
//!
//! By the Chandra–Merlin theorem, `q ⊆ q'` holds iff there is a homomorphism
//! from `q'` to `q` mapping the head of `q'` onto the head of `q` — or,
//! equivalently, iff the frozen head tuple `c(x̄)` of `q` belongs to
//! `q'(D_q)` where `D_q` is the canonical database of `q`.  This module
//! implements the canonical-database formulation, which is the one Lemma 1
//! generalizes to containment *under constraints* (implemented in
//! `sac-core`, on top of the chase).

use crate::cq::ConjunctiveQuery;
use crate::evaluate::contains_answer;
use crate::freeze::FrozenQuery;

/// Returns `true` iff `q ⊆ q'` over all instances (no constraints).
///
/// Queries with different head arities are never comparable and the function
/// returns `false` for them.
pub fn contained_in(q: &ConjunctiveQuery, q_prime: &ConjunctiveQuery) -> bool {
    if q.head.len() != q_prime.head.len() {
        return false;
    }
    let frozen = FrozenQuery::freeze(q);
    contains_answer(q_prime, &frozen.instance, &frozen.head)
}

/// Returns `true` iff `q ≡ q'` over all instances (no constraints).
pub fn equivalent(q: &ConjunctiveQuery, q_prime: &ConjunctiveQuery) -> bool {
    contained_in(q, q_prime) && contained_in(q_prime, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn path(n: usize) -> ConjunctiveQuery {
        // Boolean: E(x0,x1), ..., E(x{n-1},xn)
        let body = (0..n)
            .map(|i| {
                sac_common::Atom::from_parts(
                    "E",
                    vec![
                        sac_common::Term::variable(&format!("x{i}")),
                        sac_common::Term::variable(&format!("x{}", i + 1)),
                    ],
                )
            })
            .collect();
        ConjunctiveQuery::boolean(body).unwrap()
    }

    #[test]
    fn longer_paths_are_contained_in_shorter_ones() {
        // A database with a 3-path also has a 2-path: path(3) ⊆ path(2).
        assert!(contained_in(&path(3), &path(2)));
        assert!(!contained_in(&path(2), &path(3)));
    }

    #[test]
    fn every_query_is_contained_in_itself() {
        let q = path(4);
        assert!(contained_in(&q, &q));
        assert!(equivalent(&q, &q));
    }

    #[test]
    fn cycle_contained_in_path_but_not_conversely() {
        let cycle = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "x"),
        ])
        .unwrap();
        // Any DB with a 2-cycle has a 2-path.
        assert!(contained_in(&cycle, &path(2)));
        assert!(!contained_in(&path(2), &cycle));
    }

    #[test]
    fn head_arity_mismatch_is_never_contained() {
        let unary =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("E", var "x", var "y")]).unwrap();
        let boolean = path(1);
        assert!(!contained_in(&unary, &boolean));
        assert!(!contained_in(&boolean, &unary));
    }

    #[test]
    fn head_variables_constrain_containment() {
        // q1(x) :- E(x,y)   vs   q2(x) :- E(y,x): not comparable.
        let q1 =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("E", var "x", var "y")]).unwrap();
        let q2 =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("E", var "y", var "x")]).unwrap();
        assert!(!contained_in(&q1, &q2));
        assert!(!contained_in(&q2, &q1));
    }

    #[test]
    fn redundant_atoms_do_not_change_equivalence() {
        let q1 =
            ConjunctiveQuery::new(vec![intern("x")], vec![atom!("E", var "x", var "y")]).unwrap();
        let q2 = ConjunctiveQuery::new(
            vec![intern("x")],
            vec![atom!("E", var "x", var "y"), atom!("E", var "x", var "y2")],
        )
        .unwrap();
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn constants_affect_containment() {
        let q_const = ConjunctiveQuery::boolean(vec![atom!("E", cst "a", var "y")]).unwrap();
        let q_var = ConjunctiveQuery::boolean(vec![atom!("E", var "x", var "y")]).unwrap();
        // Having E(a, y) implies having E(x, y); not conversely.
        assert!(contained_in(&q_const, &q_var));
        assert!(!contained_in(&q_var, &q_const));
    }
}
