//! Backtracking homomorphism search with greedy join ordering.
//!
//! Homomorphisms are the single primitive behind CQ evaluation, containment
//! (Lemma 1), the chase trigger search, and the core computation.  The search
//! maps a *pattern* (a list of atoms that may contain variables) into a
//! *target* [`Instance`], extending an initial [`Substitution`].
//!
//! The engine performs a standard backtracking join:
//!
//! 1. at every step it picks the not-yet-matched atom with the most bound
//!    argument positions (constants or already-bound variables), breaking
//!    ties towards atoms whose relation is smallest;
//! 2. candidate facts for that atom are obtained through the target's
//!    positional indexes ([`sac_storage::Relation::select`]);
//! 3. bindings are extended and the search recurses, undoing bindings on
//!    backtrack.
//!
//! CQ evaluation is NP-complete in combined complexity, so the worst case is
//! exponential — as it must be — but the index-driven ordering keeps the
//! paper's workloads (queries with tens of atoms over databases with up to a
//! few hundred thousand facts) comfortably fast.

use sac_common::{Atom, Substitution, Term};
use sac_storage::Instance;
use std::ops::ControlFlow;

/// A configured homomorphism search from a pattern into a target instance.
pub struct HomomorphismSearch<'a> {
    pattern: &'a [Atom],
    target: &'a Instance,
    initial: Substitution,
}

impl<'a> HomomorphismSearch<'a> {
    /// Creates a search for homomorphisms mapping `pattern` into `target`.
    pub fn new(pattern: &'a [Atom], target: &'a Instance) -> HomomorphismSearch<'a> {
        HomomorphismSearch {
            pattern,
            target,
            initial: Substitution::new(),
        }
    }

    /// Fixes an initial partial substitution (e.g. the identity on free
    /// variables for core computation, or a chase trigger prefix).
    pub fn with_initial(mut self, initial: Substitution) -> HomomorphismSearch<'a> {
        self.initial = initial;
        self
    }

    /// Returns the first homomorphism found, if any.
    pub fn find_first(&self) -> Option<Substitution> {
        let mut found = None;
        self.for_each(|h| {
            found = Some(h.clone());
            ControlFlow::Break(())
        });
        found
    }

    /// Returns `true` if at least one homomorphism exists.
    pub fn exists(&self) -> bool {
        self.find_first().is_some()
    }

    /// Collects every homomorphism.  Use [`HomomorphismSearch::for_each`] for
    /// early termination or to avoid materializing a large result set.
    pub fn all(&self) -> Vec<Substitution> {
        let mut out = Vec::new();
        self.for_each(|h| {
            out.push(h.clone());
            ControlFlow::Continue(())
        });
        out
    }

    /// Invokes `visit` on every homomorphism until it returns
    /// [`ControlFlow::Break`].
    pub fn for_each(&self, mut visit: impl FnMut(&Substitution) -> ControlFlow<()>) {
        let mut state = self.initial.clone();
        let mut remaining: Vec<usize> = (0..self.pattern.len()).collect();
        let _ = self.search(&mut state, &mut remaining, &mut visit);
    }

    fn search(
        &self,
        state: &mut Substitution,
        remaining: &mut Vec<usize>,
        visit: &mut impl FnMut(&Substitution) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if remaining.is_empty() {
            return visit(state);
        }
        // Greedy ordering: most bound positions first, then smallest relation.
        let (choice_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &atom_idx)| {
                let atom = &self.pattern[atom_idx];
                let bound = atom
                    .args
                    .iter()
                    .filter(|t| !state.apply(**t).is_variable())
                    .count();
                let rel_size = self
                    .target
                    .relation(atom.predicate)
                    .map(|r| r.len())
                    .unwrap_or(0);
                (i, (bound, rel_size))
            })
            .max_by(|(_, (b1, s1)), (_, (b2, s2))| b1.cmp(b2).then(s2.cmp(s1)))
            .expect("remaining is non-empty");
        let atom_idx = remaining.swap_remove(choice_idx);
        let atom = &self.pattern[atom_idx];

        let outcome = self.try_atom(atom, state, remaining, visit);

        // Restore `remaining` (swap_remove moved the last element into
        // `choice_idx`; pushing back and swapping restores the original
        // multiset, which is all that matters).
        remaining.push(atom_idx);
        outcome
    }

    fn try_atom(
        &self,
        atom: &Atom,
        state: &mut Substitution,
        remaining: &mut Vec<usize>,
        visit: &mut impl FnMut(&Substitution) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let Some(relation) = self.target.relation(atom.predicate) else {
            return ControlFlow::Continue(());
        };
        if relation.arity() != atom.arity() {
            return ControlFlow::Continue(());
        }
        // Bound positions under the current partial substitution.
        let bound: Vec<(usize, Term)> = atom
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let image = state.apply(*t);
                (!image.is_variable()).then_some((i, image))
            })
            .collect();
        let candidates: Vec<Vec<Term>> = relation.select(&bound).map(|t| t.to_vec()).collect();
        for tuple in candidates {
            let target_atom = Atom::new(atom.predicate, tuple);
            let mut extended = state.clone();
            if !extended.match_atom(atom, &target_atom) {
                continue;
            }
            let mut next_state = extended;
            std::mem::swap(state, &mut next_state);
            let outcome = self.search(state, remaining, visit);
            std::mem::swap(state, &mut next_state);
            if outcome.is_break() {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }
}

/// Finds one homomorphism from `pattern` into `target`.
pub fn find_homomorphism(pattern: &[Atom], target: &Instance) -> Option<Substitution> {
    HomomorphismSearch::new(pattern, target).find_first()
}

/// Collects all homomorphisms from `pattern` into `target`.
pub fn all_homomorphisms(pattern: &[Atom], target: &Instance) -> Vec<Substitution> {
    HomomorphismSearch::new(pattern, target).all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn path_db(n: usize) -> Instance {
        // E(a0,a1), E(a1,a2), ..., E(a{n-1}, a{n})
        let mut inst = Instance::new();
        for i in 0..n {
            inst.insert(Atom::from_parts(
                "E",
                vec![
                    Term::constant(&format!("a{i}")),
                    Term::constant(&format!("a{}", i + 1)),
                ],
            ))
            .unwrap();
        }
        inst
    }

    #[test]
    fn single_atom_pattern_matches_every_fact() {
        let db = path_db(4);
        let pattern = vec![atom!("E", var "x", var "y")];
        assert_eq!(all_homomorphisms(&pattern, &db).len(), 4);
    }

    #[test]
    fn two_step_path_pattern() {
        let db = path_db(4);
        let pattern = vec![atom!("E", var "x", var "y"), atom!("E", var "y", var "z")];
        // Paths of length 2 in a 4-edge path: 3.
        assert_eq!(all_homomorphisms(&pattern, &db).len(), 3);
    }

    #[test]
    fn unsatisfiable_pattern_has_no_homomorphism() {
        let db = path_db(2);
        // A cycle of length 2 does not embed into a directed path.
        let pattern = vec![atom!("E", var "x", var "y"), atom!("E", var "y", var "x")];
        assert!(find_homomorphism(&pattern, &db).is_none());
    }

    #[test]
    fn constants_in_pattern_restrict_matches() {
        let db = path_db(4);
        let pattern = vec![atom!("E", cst "a0", var "y")];
        let homs = all_homomorphisms(&pattern, &db);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get_var(intern("y")), Some(Term::constant("a1")));
    }

    #[test]
    fn missing_predicate_yields_no_matches() {
        let db = path_db(2);
        let pattern = vec![atom!("Missing", var "x")];
        assert!(!HomomorphismSearch::new(&pattern, &db).exists());
    }

    #[test]
    fn initial_substitution_is_respected() {
        let db = path_db(4);
        let pattern = vec![atom!("E", var "x", var "y")];
        let initial = Substitution::from_pairs([(Term::variable("x"), Term::constant("a2"))]);
        let homs = HomomorphismSearch::new(&pattern, &db)
            .with_initial(initial)
            .all();
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get_var(intern("y")), Some(Term::constant("a3")));
    }

    #[test]
    fn repeated_variables_must_agree() {
        let mut db = Instance::new();
        db.insert(atom!("R", cst "a", cst "a")).unwrap();
        db.insert(atom!("R", cst "a", cst "b")).unwrap();
        let pattern = vec![atom!("R", var "x", var "x")];
        let homs = all_homomorphisms(&pattern, &db);
        assert_eq!(homs.len(), 1);
    }

    #[test]
    fn empty_pattern_has_exactly_the_initial_homomorphism() {
        let db = path_db(1);
        let homs = all_homomorphisms(&[], &db);
        assert_eq!(homs.len(), 1);
        assert!(homs[0].is_empty());
    }

    #[test]
    fn cross_product_pattern_enumerates_all_pairs() {
        let db = path_db(3);
        let pattern = vec![
            atom!("E", var "x1", var "y1"),
            atom!("E", var "x2", var "y2"),
        ];
        assert_eq!(all_homomorphisms(&pattern, &db).len(), 9);
    }

    #[test]
    fn for_each_supports_early_exit() {
        let db = path_db(5);
        let pattern = vec![atom!("E", var "x", var "y")];
        let mut seen = 0;
        HomomorphismSearch::new(&pattern, &db).for_each(|_| {
            seen += 1;
            if seen == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn triangle_pattern_in_triangle_db() {
        let mut db = Instance::new();
        for (s, t) in [("a", "b"), ("b", "c"), ("c", "a")] {
            db.insert(Atom::from_parts(
                "E",
                vec![Term::constant(s), Term::constant(t)],
            ))
            .unwrap();
        }
        let pattern = vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ];
        // Three rotations of the triangle.
        assert_eq!(all_homomorphisms(&pattern, &db).len(), 3);
    }
}
