//! # sac — Semantic Acyclicity Under Constraints
//!
//! A Rust implementation of *Semantic Acyclicity Under Constraints*
//! (Barceló, Gottlob, Pieris — PODS 2016): decide whether a conjunctive
//! query is equivalent to an **acyclic** one over all databases satisfying a
//! set of tgds or egds, and exploit the acyclic reformulation for
//! guaranteed-tractable query evaluation.
//!
//! ## Quickstart: serving queries
//!
//! The service surface is [`Database`]: `Send + Sync`, every request through
//! `&self`, text or typed queries, unified [`SacError`] failures, and typed
//! [`ResultSet`] answers.
//!
//! ```
//! use sac::prelude::*;
//!
//! # fn main() -> Result<(), SacError> {
//! let db = Database::from_facts("Parent(ann, bob). Parent(bob, cem).")?;
//!
//! // One call from text to typed results…
//! let rows = db.query("q(X, Z) :- Parent(X, Y), Parent(Y, Z).")?;
//! assert_eq!(rows.columns(), &["X".to_owned(), "Z".to_owned()]);
//! assert_eq!(rows.rows()[0]["Z"], Term::constant("cem"));
//!
//! // …or prepare once and execute from many threads against `&db`.
//! let grandparents = db.prepare("q(X) :- Parent(X, Y), Parent(Y, Z).")?;
//! std::thread::scope(|scope| {
//!     for _ in 0..2 {
//!         scope.spawn(|| assert!(grandparents.execute_boolean()));
//!     }
//! });
//! assert_eq!(db.metrics().plans_built, 2);
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart: standing queries (materialized views)
//!
//! The payoff of a guaranteed-tractable acyclic plan at serving scale:
//! [`Database::materialize`] registers a standing query whose answers are
//! kept current as facts are appended — incrementally, in work
//! proportional to the appended delta, not the database.
//!
//! ```
//! use sac::prelude::*;
//!
//! # fn main() -> Result<(), SacError> {
//! let db = Database::from_facts("Follows(ann, bob). Follows(bob, cem).")?;
//! let reach = db.materialize("q(X, Z) :- Follows(X, Y), Follows(Y, Z).")?;
//! assert_eq!(reach.len(), 1);
//!
//! // Appends maintain the view (delta push through the join tree)…
//! db.load_facts("Follows(cem, dee).")?;
//! assert!(reach.is_fresh());
//! assert_eq!(reach.snapshot().len(), 2);
//! // …and the metrics show it was maintenance, not recomputation.
//! assert_eq!(db.metrics().view_refreshes_incremental, 1);
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart: recursive queries with replayable provenance
//!
//! [`Database::run_datalog`] evaluates stratified Datalog programs
//! semi-naively on the same plan/index machinery, and returns a
//! [`Certificate`] — a derivation log that an engine-independent checker
//! ([`datalog::check`]) replays against the base facts alone:
//!
//! ```
//! use sac::prelude::*;
//!
//! # fn main() -> Result<(), SacError> {
//! let db = Database::from_facts("E(a, b). E(b, c). E(c, d).")?;
//! let run = db.run_datalog(
//!     "T(X, Y) :- E(X, Y).
//!      T(X, Z) :- E(X, Y), T(Y, Z).",
//! )?;
//! assert_eq!(run.derived_for("T").len(), 6);
//!
//! // The certificate replays without the engine: base facts in, every
//! // derivation re-checked rule by rule, fail-closed on any mismatch.
//! let program: DatalogProgram = "T(X, Y) :- E(X, Y).
//!      T(X, Z) :- E(X, Y), T(Y, Z)."
//!     .parse()
//!     .unwrap();
//! let cert = run.certificate.as_ref().unwrap();
//! db.read(|base| sac::datalog::check::check_certificate(&program, base, cert))
//!     .unwrap();
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart: the paper's decision problem
//!
//! Example 1 of the paper — the cyclic "compulsive collector" triangle is
//! semantically acyclic under a tgd:
//!
//! ```
//! use sac::prelude::*;
//!
//! let q: ConjunctiveQuery = "q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y)."
//!     .parse()
//!     .unwrap();
//! let tgd: Tgd = "Interest(X, Z), Class(Y, Z) -> Owns(X, Y).".parse().unwrap();
//!
//! // q is not acyclic, and not even semantically acyclic without constraints…
//! assert!(!is_acyclic_query(&q));
//! assert!(is_semantically_acyclic_no_constraints(&q).is_none());
//!
//! // …but under the tgd it is, and the decider returns a verified witness.
//! let result = semantic_acyclicity_under_tgds(&q, &[tgd], SemAcConfig::default());
//! let witness = result.witness().expect("Example 1 is semantically acyclic");
//! assert!(is_acyclic_query(witness));
//! assert!(witness.size() <= 2);
//! ```
//!
//! This facade crate re-exports the whole workspace under stable module
//! names; `sac::prelude` carries the items most programs need.

pub use sac_acyclic as acyclic;
pub use sac_chase as chase;
pub use sac_common as common;
pub use sac_core as core;
pub use sac_datalog as datalog;
pub use sac_deps as deps;
pub use sac_engine as engine;
pub use sac_gen as gen;
pub use sac_parser as parser;
pub use sac_query as query;
pub use sac_rewrite as rewrite;
pub use sac_storage as storage;
pub use sac_telemetry as telemetry;
pub use sac_wal as wal;

// The service façade, promoted to the crate root: `sac::Database` is the
// front door for evaluation workloads.
pub use sac_engine::{
    Certificate, CheckError, Database, DatalogOptions, DatalogProgram, DatalogRun, DatalogSource,
    DatalogStats, DerivationStep, Premise, PreparedDatalog,
};
pub use sac_engine::{
    CheckpointReport, DurabilityOptions, EngineConfig, EngineMetrics, ExecOptions,
    MaterializedView, PreparedQuery, QuerySource, RecoveryReport, RefreshMode, ResultSet, Row,
    SacError, SacResult, SyncMode, ViewOptions, ViewRefresh,
};

/// The most commonly used items, importable with `use sac::prelude::*`.
pub mod prelude {
    pub use sac_acyclic::{
        cover_equivalent, is_acyclic_instance, is_acyclic_query, join_tree_of_atoms,
        yannakakis_boolean, yannakakis_evaluate, CoverGameInput, JoinTree,
    };
    pub use sac_chase::{
        chase_preserves_acyclicity, egd_chase, egd_chase_query, tgd_chase, tgd_chase_query,
        ChaseBudget,
    };
    pub use sac_common::{atom, intern, Atom, Schema, Substitution, Term};
    pub use sac_core::{
        acyclic_approximations, build_pcp_reduction, contained_under_egds, contained_under_tgds,
        cover_game_evaluate, equivalent_under_egds, equivalent_under_tgds,
        evaluate_semantically_acyclic, is_semantically_acyclic_no_constraints,
        semantic_acyclicity_under_egds, semantic_acyclicity_under_tgds, solution_path_query,
        ucq_semantic_acyclicity_under_tgds, ContainmentAnswer, EvaluationStrategy, PcpInstance,
        SemAcConfig, SemAcResult,
    };
    pub use sac_deps::{
        classify_tgds, connecting_operator, is_sticky, sticky_marking, Egd, FunctionalDependency,
        Tgd, TgdClassification,
    };
    // The engine's `Strategy` is re-exported as `PlanStrategy`: the bare name
    // collides with `proptest::Strategy` under double glob imports.
    #[allow(deprecated)]
    pub use sac_engine::Engine;
    pub use sac_engine::Strategy as PlanStrategy;
    pub use sac_engine::{
        Certificate, CheckError, CheckpointReport, Database, DatalogOptions, DatalogProgram,
        DatalogRun, DatalogSource, DatalogStats, DerivationStep, DurabilityOptions, EngineConfig,
        EngineMetrics, ExecOptions, Explain, IndexCache, JoinIndex, MaterializedView, Plan,
        Premise, PreparedDatalog, PreparedQuery, QuerySource, RecoveryReport, RefreshMode,
        ResultSet, Row, SacError, SacResult, ShardSet, SyncMode, ViewOptions, ViewRefresh,
    };
    pub use sac_parser::{
        parse_database, parse_datalog_program, parse_egd, parse_program, parse_query, parse_tgd,
    };
    pub use sac_query::{
        contained_in, core_of, equivalent, evaluate, evaluate_boolean, ConjunctiveQuery,
        FrozenQuery, UnionOfConjunctiveQueries,
    };
    pub use sac_rewrite::{contained_via_rewriting, rewrite, RewriteBudget};
    pub use sac_storage::{DeltaCursor, Instance, InstanceStats, RelationDelta, RelationStats};
    pub use sac_telemetry::{
        fmt_ns, Event, EventSink, HistogramSnapshot, JsonLinesSink, Phase, PhaseTimes, QueryTrace,
        RingSink,
    };
}
