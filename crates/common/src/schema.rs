//! Relational schemas: finite maps from predicate symbols to arities.

use crate::atom::Atom;
use crate::error::{Error, Result};
use crate::symbol::{intern, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// A relational schema `σ`: a finite collection of predicate symbols, each
/// with a fixed arity.
///
/// A schema is optional for most of the toolkit (atoms carry their arity),
/// but it is useful for validation, for the generators, and for the
/// classifiers that reason about "fixed schema" / "fixed arity" regimes from
/// the paper's complexity statements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    predicates: BTreeMap<Symbol, usize>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Creates a schema from `(name, arity)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Schema {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.add_predicate(intern(name), arity);
        }
        s
    }

    /// Adds (or overwrites) a predicate with the given arity.
    pub fn add_predicate(&mut self, predicate: Symbol, arity: usize) {
        self.predicates.insert(predicate, arity);
    }

    /// Returns the arity of `predicate`, if declared.
    pub fn arity_of(&self, predicate: Symbol) -> Option<usize> {
        self.predicates.get(&predicate).copied()
    }

    /// Returns `true` if `predicate` is declared.
    pub fn contains(&self, predicate: Symbol) -> bool {
        self.predicates.contains_key(&predicate)
    }

    /// Number of declared predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the schema declares no predicates.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Iterates over `(predicate, arity)` pairs in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.predicates.iter().map(|(p, a)| (*p, *a))
    }

    /// The maximum arity over all declared predicates (0 for an empty schema).
    pub fn max_arity(&self) -> usize {
        self.predicates.values().copied().max().unwrap_or(0)
    }

    /// Validates that `atom` uses a declared predicate with the right arity.
    pub fn validate_atom(&self, atom: &Atom) -> Result<()> {
        match self.arity_of(atom.predicate) {
            None => Err(Error::UnknownPredicate(atom.predicate.as_str())),
            Some(arity) if arity != atom.arity() => Err(Error::ArityMismatch {
                predicate: atom.predicate.as_str(),
                expected: arity,
                found: atom.arity(),
            }),
            Some(_) => Ok(()),
        }
    }

    /// Builds the schema induced by a collection of atoms.  If the same
    /// predicate occurs with two different arities, an error is returned.
    pub fn induced_by<'a>(atoms: impl IntoIterator<Item = &'a Atom>) -> Result<Schema> {
        let mut s = Schema::new();
        for atom in atoms {
            match s.arity_of(atom.predicate) {
                None => s.add_predicate(atom.predicate, atom.arity()),
                Some(a) if a == atom.arity() => {}
                Some(a) => {
                    return Err(Error::ArityMismatch {
                        predicate: atom.predicate.as_str(),
                        expected: a,
                        found: atom.arity(),
                    })
                }
            }
        }
        Ok(s)
    }

    /// Merges another schema into this one, failing on conflicting arities.
    pub fn merge(&mut self, other: &Schema) -> Result<()> {
        for (p, a) in other.iter() {
            match self.arity_of(p) {
                None => self.add_predicate(p, a),
                Some(existing) if existing == a => {}
                Some(existing) => {
                    return Err(Error::ArityMismatch {
                        predicate: p.as_str(),
                        expected: existing,
                        found: a,
                    })
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (p, a) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}/{a}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn from_pairs_and_lookup() {
        let s = Schema::from_pairs([("R", 2), ("S", 3)]);
        assert_eq!(s.arity_of(intern("R")), Some(2));
        assert_eq!(s.arity_of(intern("S")), Some(3));
        assert_eq!(s.arity_of(intern("T")), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_arity(), 3);
    }

    #[test]
    fn validate_atom_checks_arity() {
        let s = Schema::from_pairs([("R", 2)]);
        let good = Atom::from_parts("R", vec![Term::variable("x"), Term::variable("y")]);
        let bad_arity = Atom::from_parts("R", vec![Term::variable("x")]);
        let unknown = Atom::from_parts("Q", vec![Term::variable("x")]);
        assert!(s.validate_atom(&good).is_ok());
        assert!(s.validate_atom(&bad_arity).is_err());
        assert!(s.validate_atom(&unknown).is_err());
    }

    #[test]
    fn induced_schema_detects_conflicts() {
        let a1 = Atom::from_parts("R", vec![Term::variable("x"), Term::variable("y")]);
        let a2 = Atom::from_parts("R", vec![Term::variable("x")]);
        assert!(Schema::induced_by([&a1, &a1]).is_ok());
        assert!(Schema::induced_by([&a1, &a2]).is_err());
    }

    #[test]
    fn merge_combines_and_detects_conflicts() {
        let mut s1 = Schema::from_pairs([("R", 2)]);
        let s2 = Schema::from_pairs([("S", 1)]);
        s1.merge(&s2).unwrap();
        assert!(s1.contains(intern("S")));
        let conflicting = Schema::from_pairs([("R", 3)]);
        assert!(s1.merge(&conflicting).is_err());
    }

    #[test]
    fn empty_schema_properties() {
        let s = Schema::new();
        assert!(s.is_empty());
        assert_eq!(s.max_arity(), 0);
        assert_eq!(format!("{s}"), "");
    }

    #[test]
    fn display_lists_predicates_with_arities() {
        let s = Schema::from_pairs([("Owns", 2)]);
        assert_eq!(format!("{s}"), "Owns/2");
    }
}
