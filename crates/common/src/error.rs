//! Error type shared by the workspace crates.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the semantic-acyclicity toolkit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An atom used a predicate not declared in the schema.
    UnknownPredicate(String),
    /// An atom used a predicate with the wrong number of arguments.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Arity found in the offending atom.
        found: usize,
    },
    /// A dependency or query was structurally malformed.
    Malformed(String),
    /// The egd chase failed by attempting to identify two distinct constants.
    ChaseFailure(String),
    /// A resource budget (chase steps, candidate count, …) was exhausted
    /// before the procedure could reach a definite answer.
    BudgetExhausted(String),
    /// Parsing error with a human-readable message and byte offset.
    Parse {
        /// Explanation of what went wrong.
        message: String,
        /// Byte offset into the input where the error was detected.
        offset: usize,
    },
    /// A procedure was invoked on a dependency class it does not support.
    UnsupportedClass(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            Error::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for `{predicate}`: expected {expected}, found {found}"
            ),
            Error::Malformed(msg) => write!(f, "malformed input: {msg}"),
            Error::ChaseFailure(msg) => write!(f, "chase failure: {msg}"),
            Error::BudgetExhausted(msg) => write!(f, "budget exhausted: {msg}"),
            Error::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::UnsupportedClass(msg) => write!(f, "unsupported dependency class: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::ArityMismatch {
            predicate: "R".into(),
            expected: 2,
            found: 3,
        };
        let msg = format!("{e}");
        assert!(msg.contains("R"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));

        let p = Error::Parse {
            message: "expected `)`".into(),
            offset: 12,
        };
        assert!(format!("{p}").contains("12"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&Error::Malformed("x".into()));
    }
}
