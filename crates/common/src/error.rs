//! Error type shared by the workspace crates.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the semantic-acyclicity toolkit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An atom used a predicate not declared in the schema.
    UnknownPredicate(String),
    /// An atom used a predicate with the wrong number of arguments.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Arity found in the offending atom.
        found: usize,
    },
    /// A dependency or query was structurally malformed.
    Malformed(String),
    /// The egd chase failed by attempting to identify two distinct constants.
    ChaseFailure(String),
    /// A resource budget (chase steps, candidate count, …) was exhausted
    /// before the procedure could reach a definite answer.
    BudgetExhausted(String),
    /// Parsing error with a human-readable message and source position.
    Parse {
        /// Explanation of what went wrong.
        message: String,
        /// Byte offset into the input where the error was detected.
        offset: usize,
        /// 1-based line of the error position.
        line: usize,
        /// 1-based column (in characters) of the error position.
        column: usize,
    },
    /// A procedure was invoked on a dependency class it does not support.
    UnsupportedClass(String),
}

impl Error {
    /// Builds a [`Error::Parse`] at `offset` into `input`, deriving the
    /// 1-based line/column from the input text.
    pub fn parse_at(message: impl Into<String>, input: &str, offset: usize) -> Error {
        let (line, column) = position_of(input, offset);
        Error::Parse {
            message: message.into(),
            offset,
            line,
            column,
        }
    }
}

/// The 1-based `(line, column)` of byte `offset` inside `input` (column
/// counted in characters).  Offsets past the end report the end position.
pub fn position_of(input: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(input.len());
    let mut line = 1;
    let mut column = 1;
    for (i, c) in input.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            column = 1;
        } else {
            column += 1;
        }
    }
    (line, column)
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            Error::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for `{predicate}`: expected {expected}, found {found}"
            ),
            Error::Malformed(msg) => write!(f, "malformed input: {msg}"),
            Error::ChaseFailure(msg) => write!(f, "chase failure: {msg}"),
            Error::BudgetExhausted(msg) => write!(f, "budget exhausted: {msg}"),
            Error::Parse {
                message,
                line,
                column,
                ..
            } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
            Error::UnsupportedClass(msg) => write!(f, "unsupported dependency class: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::ArityMismatch {
            predicate: "R".into(),
            expected: 2,
            found: 3,
        };
        let msg = format!("{e}");
        assert!(msg.contains("R"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));

        let p = Error::parse_at("expected `)`", "q(X) :- R(X,\nS(", 13);
        let text = format!("{p}");
        assert!(text.contains("line 2"), "got {text}");
        assert!(text.contains("column 1"), "got {text}");
    }

    #[test]
    fn positions_count_lines_and_columns_from_one() {
        assert_eq!(position_of("abc", 0), (1, 1));
        assert_eq!(position_of("abc", 2), (1, 3));
        assert_eq!(position_of("a\nbc", 2), (2, 1));
        assert_eq!(position_of("a\nbc", 3), (2, 2));
        // Past-the-end offsets clamp to the end position.
        assert_eq!(position_of("a\nb", 99), (2, 2));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&Error::Malformed("x".into()));
    }
}
