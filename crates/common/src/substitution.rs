//! Substitutions: finite maps from terms to terms.
//!
//! A substitution serves three roles across the toolkit:
//!
//! * a **homomorphism candidate** during query evaluation and containment
//!   (variables map to constants/nulls, constants are fixed),
//! * a **trigger** for a chase step (the body of a dependency is matched into
//!   the instance),
//! * a **unifier** inside the UCQ rewriting engine (terms map to terms).
//!
//! The map is keyed by [`Term`] rather than by variable symbol so that the
//! rewriting engine can also record identifications of frozen nulls; the
//! convenience methods for the common variable-keyed use are provided.

use crate::atom::Atom;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A finite mapping from terms to terms.
///
/// Applying a substitution leaves unmapped terms unchanged.  Constants are
/// never remapped by the `bind_*` helpers (attempting to do so returns
/// `false`), matching the paper's requirement that homomorphisms are the
/// identity on constants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Term, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Substitution {
        Substitution::default()
    }

    /// Builds a substitution from `(from, to)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Term, Term)>) -> Substitution {
        Substitution {
            map: pairs.into_iter().collect(),
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the image of a term, if bound.
    pub fn get(&self, term: Term) -> Option<Term> {
        self.map.get(&term).copied()
    }

    /// Looks up the image of a variable, if bound.
    pub fn get_var(&self, var: Symbol) -> Option<Term> {
        self.get(Term::Variable(var))
    }

    /// Applies the substitution to a single term (identity if unbound).
    pub fn apply(&self, term: Term) -> Term {
        self.get(term).unwrap_or(term)
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        atom.map_args(|t| self.apply(t))
    }

    /// Applies the substitution to a slice of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Attempts to bind `from ↦ to`.
    ///
    /// Returns `false` (and leaves the substitution unchanged) if `from` is a
    /// rigid constant different from `to`, or if `from` is already bound to a
    /// different term.  Binding a term to itself always succeeds.
    pub fn bind(&mut self, from: Term, to: Term) -> bool {
        if from == to {
            return true;
        }
        if from.is_rigid() {
            return false;
        }
        match self.map.get(&from) {
            Some(existing) => *existing == to,
            None => {
                self.map.insert(from, to);
                true
            }
        }
    }

    /// Attempts to bind a variable to a term (see [`Substitution::bind`]).
    pub fn bind_var(&mut self, var: Symbol, to: Term) -> bool {
        self.bind(Term::Variable(var), to)
    }

    /// Removes the binding for `from`, if any.
    pub fn unbind(&mut self, from: Term) {
        self.map.remove(&from);
    }

    /// Iterates over `(from, to)` bindings in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Term, Term)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Composition `other ∘ self`: first apply `self`, then `other`.
    ///
    /// The result maps every term `t` bound by either substitution to
    /// `other.apply(self.apply(t))`.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (from, to) in self.iter() {
            out.map.insert(from, other.apply(to));
        }
        for (from, to) in other.iter() {
            out.map.entry(from).or_insert(to);
        }
        out
    }

    /// Extends this substitution by matching the pattern atom `pattern`
    /// against the ground-ish atom `target` argument by argument.
    ///
    /// Returns `false` (leaving self possibly partially extended — callers
    /// should clone first if they need rollback) if the predicates differ,
    /// the arities differ, or a binding conflict arises.
    pub fn match_atom(&mut self, pattern: &Atom, target: &Atom) -> bool {
        if pattern.predicate != target.predicate || pattern.arity() != target.arity() {
            return false;
        }
        for (p, t) in pattern.args.iter().zip(target.args.iter()) {
            let image = self.apply(*p);
            if image.is_variable() {
                if !self.bind(image, *t) {
                    return false;
                }
            } else if image != *t {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (from, to)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{from} ↦ {to}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::intern;

    #[test]
    fn apply_leaves_unbound_terms_alone() {
        let s = Substitution::new();
        assert_eq!(s.apply(Term::variable("x")), Term::variable("x"));
        assert_eq!(s.apply(Term::constant("a")), Term::constant("a"));
    }

    #[test]
    fn bind_respects_rigidity_and_conflicts() {
        let mut s = Substitution::new();
        assert!(s.bind_var(intern("x"), Term::constant("a")));
        // Rebinding to the same value is fine, to a different one is not.
        assert!(s.bind_var(intern("x"), Term::constant("a")));
        assert!(!s.bind_var(intern("x"), Term::constant("b")));
        // Constants are rigid.
        assert!(!s.bind(Term::constant("a"), Term::constant("b")));
        assert!(s.bind(Term::constant("a"), Term::constant("a")));
    }

    #[test]
    fn apply_atom_substitutes_all_positions() {
        let mut s = Substitution::new();
        s.bind_var(intern("x"), Term::constant("a"));
        let atom = Atom::from_parts("R", vec![Term::variable("x"), Term::variable("y")]);
        let out = s.apply_atom(&atom);
        assert_eq!(out.args, vec![Term::constant("a"), Term::variable("y")]);
    }

    #[test]
    fn match_atom_builds_homomorphism() {
        let pattern = Atom::from_parts("R", vec![Term::variable("x"), Term::variable("x")]);
        let target_ok = Atom::from_parts("R", vec![Term::constant("a"), Term::constant("a")]);
        let target_bad = Atom::from_parts("R", vec![Term::constant("a"), Term::constant("b")]);
        let mut s = Substitution::new();
        assert!(s.match_atom(&pattern, &target_ok));
        assert_eq!(s.get_var(intern("x")), Some(Term::constant("a")));
        let mut s2 = Substitution::new();
        assert!(!s2.match_atom(&pattern, &target_bad));
    }

    #[test]
    fn match_atom_rejects_wrong_predicate_or_arity() {
        let pattern = Atom::from_parts("R", vec![Term::variable("x")]);
        let other_pred = Atom::from_parts("S", vec![Term::constant("a")]);
        let other_arity = Atom::from_parts("R", vec![Term::constant("a"), Term::constant("b")]);
        let mut s = Substitution::new();
        assert!(!s.clone().match_atom(&pattern, &other_pred));
        assert!(!s.match_atom(&pattern, &other_arity));
    }

    #[test]
    fn compose_applies_left_then_right() {
        let s1 = Substitution::from_pairs([(Term::variable("x"), Term::variable("y"))]);
        let s2 = Substitution::from_pairs([(Term::variable("y"), Term::constant("a"))]);
        let c = s1.compose(&s2);
        assert_eq!(c.apply(Term::variable("x")), Term::constant("a"));
        assert_eq!(c.apply(Term::variable("y")), Term::constant("a"));
    }

    #[test]
    fn display_shows_bindings() {
        let s = Substitution::from_pairs([(Term::variable("x"), Term::constant("a"))]);
        assert_eq!(format!("{s}"), "{?x ↦ a}");
    }
}
