//! # sac-common
//!
//! Foundational data model for the *Semantic Acyclicity Under Constraints*
//! toolkit (Barceló, Gottlob, Pieris — PODS 2016).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Symbol`] — interned identifiers for predicate names, constants and
//!   variable names.  Interning keeps terms `Copy` and makes hashing and
//!   equality O(1), which matters inside the chase and the homomorphism
//!   search engine.
//! * [`Term`] — the three kinds of terms of the paper's Section 2:
//!   constants (`C`), labelled nulls (`N`) and variables (`V`).
//! * [`Atom`] — a predicate applied to a tuple of terms.
//! * [`Schema`] — a relational schema mapping predicate symbols to arities.
//! * [`Substitution`] — finite mappings from terms to terms, used both as
//!   homomorphisms and as most-general unifiers.
//! * [`syntax`] — the shared Datalog-style surface syntax at the raw
//!   (pre-semantic) level, so each crate can implement `FromStr` for its own
//!   types by delegation.
//!
//! The crate is dependency free (aside from the Rust standard library) and is
//! deliberately small: higher-level notions (queries, dependencies, storage)
//! live in their own crates.

pub mod atom;
pub mod error;
pub mod fresh;
pub mod fx;
pub mod schema;
pub mod substitution;
pub mod symbol;
pub mod syntax;
pub mod term;

pub use atom::Atom;
pub use error::{Error, Result};
pub use fresh::FreshSource;
pub use fx::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use schema::Schema;
pub use substitution::Substitution;
pub use symbol::{intern, resolve, Symbol};
pub use syntax::RawStatement;
pub use term::Term;
