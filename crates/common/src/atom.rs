//! Relational atoms: a predicate applied to a tuple of terms.

use crate::symbol::{intern, Symbol};
use crate::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// An atom `R(t1, ..., tn)` over a relational schema.
///
/// Atoms are used uniformly for instance facts (containing constants and
/// nulls) and for query/dependency atoms (containing variables and
/// constants).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Predicate symbol.
    pub predicate: Symbol,
    /// Argument tuple.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates a new atom from a predicate symbol and arguments.
    pub fn new(predicate: Symbol, args: Vec<Term>) -> Atom {
        Atom { predicate, args }
    }

    /// Creates a new atom, interning the predicate name.
    pub fn from_parts(predicate: &str, args: Vec<Term>) -> Atom {
        Atom::new(intern(predicate), args)
    }

    /// The arity of the atom (number of arguments).
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the variables occurring in the atom (with duplicates).
    pub fn variables_iter(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.args.iter().filter_map(|t| t.as_variable())
    }

    /// Returns the set of distinct variables occurring in the atom.
    pub fn variables(&self) -> BTreeSet<Symbol> {
        self.variables_iter().collect()
    }

    /// Returns the set of distinct labelled nulls occurring in the atom.
    pub fn nulls(&self) -> BTreeSet<u64> {
        self.args.iter().filter_map(|t| t.as_null()).collect()
    }

    /// Returns the set of distinct constants occurring in the atom.
    pub fn constants(&self) -> BTreeSet<Symbol> {
        self.args.iter().filter_map(|t| t.as_constant()).collect()
    }

    /// Returns the set of distinct terms occurring in the atom.
    pub fn terms(&self) -> BTreeSet<Term> {
        self.args.iter().copied().collect()
    }

    /// Returns `true` if the atom contains no variables (i.e. it is a fact
    /// built from constants and nulls only).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_variable())
    }

    /// Returns `true` if `var` occurs among the arguments.
    pub fn mentions_variable(&self, var: Symbol) -> bool {
        self.args.iter().any(|t| t.as_variable() == Some(var))
    }

    /// Returns `true` if `term` occurs among the arguments.
    pub fn mentions_term(&self, term: Term) -> bool {
        self.args.contains(&term)
    }

    /// Returns the positions (0-based) at which `term` occurs.
    pub fn positions_of(&self, term: Term) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (*t == term).then_some(i))
            .collect()
    }

    /// Applies `f` to every argument, producing a new atom over the same
    /// predicate.
    pub fn map_args(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            predicate: self.predicate,
            args: self.args.iter().map(|t| f(*t)).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{arg}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro used pervasively in tests and examples:
/// `atom!("R", var "x", cst "a", null 3)`.
#[macro_export]
macro_rules! atom {
    ($pred:expr $(, $kind:ident $val:expr)* $(,)?) => {
        $crate::Atom::from_parts($pred, vec![$($crate::atom!(@term $kind $val)),*])
    };
    (@term var $v:expr) => { $crate::Term::variable($v) };
    (@term cst $v:expr) => { $crate::Term::constant($v) };
    (@term null $v:expr) => { $crate::Term::null($v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Atom {
        Atom::from_parts(
            "R",
            vec![
                Term::variable("x"),
                Term::constant("a"),
                Term::variable("x"),
            ],
        )
    }

    #[test]
    fn arity_counts_arguments() {
        assert_eq!(sample().arity(), 3);
        assert_eq!(Atom::from_parts("P", vec![]).arity(), 0);
    }

    #[test]
    fn variable_and_constant_sets_deduplicate() {
        let a = sample();
        assert_eq!(a.variables().len(), 1);
        assert_eq!(a.constants().len(), 1);
        assert!(a.nulls().is_empty());
    }

    #[test]
    fn groundness_requires_no_variables() {
        assert!(!sample().is_ground());
        let fact = Atom::from_parts("R", vec![Term::constant("a"), Term::null(1)]);
        assert!(fact.is_ground());
    }

    #[test]
    fn mentions_and_positions() {
        let a = sample();
        assert!(a.mentions_variable(intern("x")));
        assert!(!a.mentions_variable(intern("y")));
        assert_eq!(a.positions_of(Term::variable("x")), vec![0, 2]);
        assert_eq!(a.positions_of(Term::constant("a")), vec![1]);
        assert!(a.positions_of(Term::constant("zzz")).is_empty());
    }

    #[test]
    fn map_args_preserves_predicate() {
        let a = sample();
        let b = a.map_args(|t| {
            if t.is_variable() {
                Term::constant("c")
            } else {
                t
            }
        });
        assert_eq!(b.predicate, a.predicate);
        assert!(b.is_ground());
    }

    #[test]
    fn display_formats_prolog_style() {
        let a = sample();
        assert_eq!(format!("{a}"), "R(?x, a, ?x)");
    }

    #[test]
    fn atom_macro_builds_expected_terms() {
        let a = atom!("Owns", var "x", cst "rec1", null 2);
        assert_eq!(a.predicate, intern("Owns"));
        assert_eq!(
            a.args,
            vec![Term::variable("x"), Term::constant("rec1"), Term::null(2)]
        );
    }
}
