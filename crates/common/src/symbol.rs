//! Global string interner producing lightweight [`Symbol`] handles.
//!
//! Predicate names, constant names and variable names are all interned into a
//! single process-wide table.  Interning gives us `Copy` terms, O(1) equality
//! and hashing, and deterministic `Display` output (the original string is
//! recoverable through [`resolve`]).
//!
//! The interner is intentionally append-only: symbols are never removed, so a
//! `Symbol` handle is valid for the lifetime of the process.  The table is
//! guarded by an `RwLock`; reads (the common case during query evaluation)
//! only take the shared lock.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Two `Symbol`s are equal if and only if the strings they were interned from
/// are equal.  The ordering of symbols follows interning order, which is
/// deterministic for a fixed sequence of [`intern`] calls; code that needs a
/// *lexicographic* order should compare the resolved strings instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol inside the global interner.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(self) -> String {
        resolve(self)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve(*self))
    }
}

#[derive(Default)]
struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), id);
        Symbol(id)
    }

    fn resolve(&self, sym: Symbol) -> Option<String> {
        self.strings.get(sym.0 as usize).cloned()
    }
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::default()))
}

/// Interns `s` and returns its [`Symbol`] handle.
///
/// Interning the same string twice returns the same symbol.
pub fn intern(s: &str) -> Symbol {
    // Fast path: the string is already interned and only the read lock is
    // required.
    {
        let guard = global().read().expect("interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
    }
    let mut guard = global().write().expect("interner poisoned");
    guard.intern(s)
}

/// Returns the string a [`Symbol`] was interned from.
///
/// # Panics
///
/// Panics if the symbol does not belong to the global interner (which can
/// only happen if a `Symbol` was forged from a raw index).
pub fn resolve(sym: Symbol) -> String {
    let guard = global().read().expect("interner poisoned");
    guard
        .resolve(sym)
        .unwrap_or_else(|| panic!("unknown symbol index {}", sym.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("R");
        let b = intern("R");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("some_predicate_x");
        let b = intern("some_predicate_y");
        assert_ne!(a, b);
    }

    #[test]
    fn resolve_round_trips() {
        let a = intern("Interest");
        assert_eq!(resolve(a), "Interest");
        assert_eq!(a.as_str(), "Interest");
    }

    #[test]
    fn display_uses_original_string() {
        let a = intern("Owns");
        assert_eq!(format!("{a}"), "Owns");
    }

    #[test]
    fn symbols_are_copy_and_hashable() {
        use std::collections::HashSet;
        let a = intern("A");
        let b = a;
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn many_symbols_remain_distinct() {
        let symbols: Vec<Symbol> = (0..500).map(|i| intern(&format!("pred_{i}"))).collect();
        for (i, s) in symbols.iter().enumerate() {
            assert_eq!(resolve(*s), format!("pred_{i}"));
        }
    }
}
