//! The workspace's Datalog-style text syntax, at the *raw* (pre-semantic)
//! level: a tokenizer and a statement parser that classify input into rules,
//! dependencies and facts without imposing the semantic constraints of the
//! higher layers.
//!
//! Living in `sac-common` lets the crates that own the semantic types
//! implement [`std::str::FromStr`] by delegation — `sac-query` for
//! `ConjunctiveQuery`, `sac-deps` for `Tgd`/`Egd`, `sac-storage` for
//! `Instance` — while `sac-parser` assembles whole programs from the same
//! raw statements.  (Those impls cannot live in `sac-parser`: the orphan
//! rule requires them in the type's own crate, and the parser sits *above*
//! those crates in the dependency DAG.)
//!
//! Conventions (Prolog/Datalog style):
//! * identifiers starting with an **uppercase** letter or `_` are variables,
//! * identifiers starting with a lowercase letter or a digit are constants,
//! * predicates are identifiers (any case) applied to a parenthesised,
//!   comma-separated argument list,
//! * `%` starts a comment running to the end of the line.
//!
//! Grammar summary:
//! ```text
//! rule   :=  name(T1, …, Tk) :- literal, …, literal .   (k may be 0)
//! literal :=  atom  |  not atom                          (rule bodies only)
//! tgd    :=  atom, …, atom -> atom, …, atom .
//! egd    :=  atom, …, atom -> T = U .
//! fact   :=  atom .
//! ```
//!
//! `not` is a contextual keyword: it negates the following atom only when it
//! is immediately followed by another identifier (the atom's predicate), so
//! `not(X)` still parses as a positive atom whose predicate is `not`.
//!
//! Errors are [`Error::Parse`] values carrying the byte offset plus the
//! 1-based line/column of the failure.

use crate::atom::Atom;
use crate::error::{Error, Result};
use crate::symbol::intern;
use crate::term::Term;

/// A token of the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    /// An identifier (predicate, variable or constant name).
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    ColonDash,
    /// `->`
    Arrow,
    /// `=`
    Equals,
}

impl Token {
    fn describe(&self) -> &'static str {
        match self {
            Token::Ident(_) => "an identifier",
            Token::LParen => "`(`",
            Token::RParen => "`)`",
            Token::Comma => "`,`",
            Token::Dot => "`.`",
            Token::ColonDash => "`:-`",
            Token::Arrow => "`->`",
            Token::Equals => "`=`",
        }
    }
}

/// Whether `c` may start an identifier.
fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `c` may continue an identifier (`*` is continuation-only: it
/// appears in generated predicate names like `R*`, never first).
fn is_ident_char(c: char) -> bool {
    is_ident_start(c) || c == '*'
}

/// Tokenizes the input; `%`-to-end-of-line comments are skipped.  Iteration
/// is by `char`, so multi-byte identifiers (e.g. accented names) lex as
/// ordinary identifiers instead of slicing mid-character.
fn tokenize(input: &str) -> Result<Vec<(Token, usize)>> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {}
            '%' => {
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' => tokens.push((Token::LParen, i)),
            ')' => tokens.push((Token::RParen, i)),
            ',' => tokens.push((Token::Comma, i)),
            '.' => tokens.push((Token::Dot, i)),
            '=' => tokens.push((Token::Equals, i)),
            ':' => {
                if chars.next_if(|(_, c)| *c == '-').is_some() {
                    tokens.push((Token::ColonDash, i));
                } else {
                    return Err(Error::parse_at("expected `:-`", input, i));
                }
            }
            '-' => {
                if chars.next_if(|(_, c)| *c == '>').is_some() {
                    tokens.push((Token::Arrow, i));
                } else {
                    return Err(Error::parse_at("expected `->`", input, i));
                }
            }
            c if is_ident_start(c) => {
                let mut end = i + c.len_utf8();
                while let Some((j, c)) = chars.next_if(|(_, c)| is_ident_char(*c)) {
                    end = j + c.len_utf8();
                }
                tokens.push((Token::Ident(input[i..end].to_owned()), i));
            }
            other => {
                return Err(Error::parse_at(
                    format!("unexpected character `{other}`"),
                    input,
                    i,
                ))
            }
        }
    }
    Ok(tokens)
}

/// One syntactic statement, classified by shape only.  Semantic validation
/// (variables-only heads, groundness of facts, frontier conditions, …)
/// belongs to the crates that own the corresponding types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawStatement {
    /// `head :- literal, …, literal.` — a query/rule.  The head is kept as a
    /// full atom; the query layer checks that its arguments are variables.
    /// Negated literals (`not P(…)`) are collected separately: conjunctive
    /// queries reject them, the Datalog layer stratifies them.
    Rule {
        /// The head pseudo-atom `name(args)`.
        head: Atom,
        /// The positive body conjunction.
        body: Vec<Atom>,
        /// The negated body atoms (`not P(…)`), in source order.
        negated: Vec<Atom>,
    },
    /// `atom, …, atom -> atom, …, atom.` — a tuple-generating dependency.
    Tgd {
        /// The body conjunction.
        body: Vec<Atom>,
        /// The head conjunction.
        head: Vec<Atom>,
    },
    /// `atom, …, atom -> T = U.` — an equality-generating dependency.  The
    /// equated terms are kept raw; the dependency layer checks they are
    /// variables.
    Egd {
        /// The body conjunction.
        body: Vec<Atom>,
        /// Left-hand side of the equation.
        left: Term,
        /// Right-hand side of the equation.
        right: Term,
    },
    /// `atom.` — a fact (the storage layer checks groundness where needed).
    Fact(Atom),
}

impl RawStatement {
    /// A short noun describing the statement's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            RawStatement::Rule { .. } => "query",
            RawStatement::Tgd { .. } => "tgd",
            RawStatement::Egd { .. } => "egd",
            RawStatement::Fact(_) => "fact",
        }
    }
}

struct RawParser<'a> {
    input: &'a str,
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl<'a> RawParser<'a> {
    fn new(input: &'a str) -> Result<RawParser<'a>> {
        Ok(RawParser {
            input,
            tokens: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, o)| *o)
            .unwrap_or(0)
    }

    fn error(&self, message: &str) -> Error {
        Error::parse_at(message, self.input, self.offset())
    }

    fn eat(&mut self, expected: &Token) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {}", expected.describe())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(Token::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected an identifier")),
        }
    }

    fn term_of(name: &str) -> Term {
        let first = name.chars().next().unwrap_or('a');
        if first.is_uppercase() || first == '_' {
            Term::Variable(intern(name))
        } else {
            Term::Constant(intern(name))
        }
    }

    /// Parses `Pred(arg, …, arg)`; the argument list may be empty.
    fn atom(&mut self) -> Result<Atom> {
        let predicate = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let name = self.ident()?;
                args.push(Self::term_of(&name));
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        Ok(Atom::from_parts(&predicate, args))
    }

    fn atom_list(&mut self) -> Result<Vec<Atom>> {
        let mut atoms = vec![self.atom()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            atoms.push(self.atom()?);
        }
        Ok(atoms)
    }

    /// Whether the parser sits on a `not P` negation marker: the contextual
    /// keyword `not` followed by another identifier.  A lone `not(` is the
    /// start of a positive atom whose predicate happens to be `not`.
    fn at_negation(&self) -> bool {
        matches!(self.peek(), Some(Token::Ident(word)) if word == "not")
            && matches!(self.tokens.get(self.pos + 1), Some((Token::Ident(_), _)))
    }

    /// Parses a rule body: positive and negated literals in any order.
    fn literal_list(&mut self) -> Result<(Vec<Atom>, Vec<Atom>)> {
        let mut body = Vec::new();
        let mut negated = Vec::new();
        loop {
            if self.at_negation() {
                self.pos += 1;
                negated.push(self.atom()?);
            } else {
                body.push(self.atom()?);
            }
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok((body, negated))
    }

    /// Parses one statement ending with `.`.
    fn statement(&mut self) -> Result<RawStatement> {
        let start = self.pos;
        let first_atom = self.atom()?;
        match self.peek() {
            Some(Token::ColonDash) => {
                self.pos += 1;
                let (body, negated) = self.literal_list()?;
                self.eat(&Token::Dot)?;
                Ok(RawStatement::Rule {
                    head: first_atom,
                    body,
                    negated,
                })
            }
            Some(Token::Dot) => {
                self.pos += 1;
                Ok(RawStatement::Fact(first_atom))
            }
            Some(Token::Comma) | Some(Token::Arrow) => {
                // Dependency: re-parse the body from `start`.
                self.pos = start;
                let body = self.atom_list()?;
                self.eat(&Token::Arrow)?;
                // Egd if the right-hand side is `T = U`.
                let rhs_start = self.pos;
                if let Ok(left_name) = self.ident() {
                    if self.peek() == Some(&Token::Equals) {
                        self.pos += 1;
                        let right_name = self.ident()?;
                        self.eat(&Token::Dot)?;
                        return Ok(RawStatement::Egd {
                            body,
                            left: Self::term_of(&left_name),
                            right: Self::term_of(&right_name),
                        });
                    }
                }
                self.pos = rhs_start;
                let head = self.atom_list()?;
                self.eat(&Token::Dot)?;
                Ok(RawStatement::Tgd { body, head })
            }
            _ => Err(self.error("expected `.`, `:-`, `,` or `->`")),
        }
    }

    fn statements(&mut self) -> Result<Vec<(RawStatement, usize)>> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            let start = self.offset();
            out.push((self.statement()?, start));
        }
        Ok(out)
    }
}

/// Parses every statement of `input` (rules, dependencies and facts, in any
/// order).
pub fn parse_statements(input: &str) -> Result<Vec<RawStatement>> {
    Ok(parse_statements_located(input)?
        .into_iter()
        .map(|(statement, _)| statement)
        .collect())
}

/// [`parse_statements`], with each statement's starting byte offset — so
/// callers doing their own semantic validation (e.g. `sac-parser`) can
/// report positioned errors for statements that parse but do not validate.
pub fn parse_statements_located(input: &str) -> Result<Vec<(RawStatement, usize)>> {
    RawParser::new(input)?.statements()
}

/// Parses exactly one statement; trailing statements are an error.
pub fn parse_statement(input: &str) -> Result<RawStatement> {
    let mut parser = RawParser::new(input)?;
    if parser.peek().is_none() {
        return Err(Error::parse_at("expected a statement", input, 0));
    }
    let statement = parser.statement()?;
    if parser.peek().is_some() {
        return Err(Error::parse_at(
            "expected a single statement",
            input,
            parser.offset(),
        ));
    }
    Ok(statement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;

    #[test]
    fn classifies_the_four_statement_shapes() {
        let parsed = parse_statements(
            "
            % Example 1, end to end.
            Interest(alice, jazz).
            Interest(X, Z), Class(Y, Z) -> Owns(X, Y).
            R(X, Y), R(X, Z) -> Y = Z.
            q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).
            ",
        )
        .unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0].kind(), "fact");
        assert_eq!(parsed[1].kind(), "tgd");
        assert_eq!(parsed[2].kind(), "egd");
        assert_eq!(parsed[3].kind(), "query");
        let RawStatement::Rule {
            head,
            body,
            negated,
        } = &parsed[3]
        else {
            panic!("expected a rule");
        };
        assert_eq!(head.arity(), 2);
        assert_eq!(body.len(), 3);
        assert!(negated.is_empty());
    }

    #[test]
    fn case_determines_variables_vs_constants() {
        let RawStatement::Fact(atom) = parse_statement("R(X, x, _tmp).").unwrap() else {
            panic!("expected a fact");
        };
        assert!(atom.args[0].is_variable());
        assert!(atom.args[1].is_constant());
        assert!(atom.args[2].is_variable());
    }

    #[test]
    fn egd_right_hand_sides_keep_raw_terms() {
        let RawStatement::Egd { body, left, right } = parse_statement("R(X, Y) -> X = Y.").unwrap()
        else {
            panic!("expected an egd");
        };
        assert_eq!(body, vec![atom!("R", var "X", var "Y")]);
        assert_eq!(left, Term::variable("X"));
        assert_eq!(right, Term::variable("Y"));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse_statements("R(a).\nS(b) & T(c).").unwrap_err();
        let Error::Parse {
            offset,
            line,
            column,
            ..
        } = err
        else {
            panic!("expected a parse error");
        };
        assert_eq!(offset, 11);
        assert_eq!(line, 2);
        assert_eq!(column, 6);
    }

    #[test]
    fn multi_byte_identifiers_lex_without_panicking() {
        // Regression: the byte-wise lexer used to slice mid-character on
        // non-ASCII identifiers.  They now parse as ordinary identifiers…
        let RawStatement::Rule { head, body, .. } = parse_statement("q(X) :- Ré(X, öäü).").unwrap()
        else {
            panic!("expected a rule");
        };
        assert_eq!(head.predicate.as_str(), "q");
        assert_eq!(body[0].predicate.as_str(), "Ré");
        assert!(body[0].args[1].is_constant(), "ö is lowercase → constant");
        // …and stray non-identifier symbols still error instead of panicking.
        let err = parse_statement("q(X) :- R(X) ∧ S(X).").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn lone_dash_and_colon_are_errors() {
        assert!(parse_statements("R(a) - S(b)").is_err());
        assert!(parse_statements("R(a) : S(b)").is_err());
        assert!(parse_statements("R(a) S(b).").is_err());
    }

    #[test]
    fn star_continues_but_never_starts_identifiers() {
        let RawStatement::Fact(atom) = parse_statement("R*2(a).").unwrap() else {
            panic!("expected a fact");
        };
        assert_eq!(atom.predicate.as_str(), "R*2");
        assert!(parse_statement("*R(a).").is_err());
        assert!(parse_statement("q(X) :- R(X), *S(X).").is_err());
    }

    #[test]
    fn negated_literals_parse_in_rule_bodies() {
        let RawStatement::Rule {
            head,
            body,
            negated,
        } = parse_statement("alive(X) :- node(X), not dead(X).").unwrap()
        else {
            panic!("expected a rule");
        };
        assert_eq!(head.predicate.as_str(), "alive");
        assert_eq!(body, vec![atom!("node", var "X")]);
        assert_eq!(negated, vec![atom!("dead", var "X")]);
    }

    #[test]
    fn not_stays_a_predicate_when_directly_applied() {
        // `not(X)` — no following identifier, so `not` is an ordinary atom.
        let RawStatement::Rule { body, negated, .. } =
            parse_statement("q(X) :- not(X), R(X).").unwrap()
        else {
            panic!("expected a rule");
        };
        assert_eq!(body[0].predicate.as_str(), "not");
        assert!(negated.is_empty());
        // And `not not(X)` negates the `not` predicate.
        let RawStatement::Rule { body, negated, .. } =
            parse_statement("q(X) :- R(X), not not(X).").unwrap()
        else {
            panic!("expected a rule");
        };
        assert_eq!(body.len(), 1);
        assert_eq!(negated[0].predicate.as_str(), "not");
    }

    #[test]
    fn negation_is_rule_body_only() {
        // `not` in a tgd body is just an atom application; a dangling `not`
        // before an atom fails to parse as a dependency.
        assert!(parse_statement("R(X), not S(X) -> T(X).").is_err());
        // Facts cannot be negated.
        assert!(parse_statement("not R(a).").is_err());
    }

    #[test]
    fn single_statement_rejects_extras_and_emptiness() {
        assert!(parse_statement("R(a).").is_ok());
        assert!(parse_statement("R(a). S(b).").is_err());
        assert!(parse_statement("  % only a comment\n").is_err());
    }
}
