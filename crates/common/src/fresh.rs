//! Generators for fresh labelled nulls and fresh variable names.
//!
//! The chase invents a fresh null for every existentially quantified variable
//! of a fired tgd; the rewriting engine and several constructions (the
//! connecting operator, the PCP reduction) need fresh variable names that do
//! not clash with existing ones.  [`FreshSource`] centralizes both.

use crate::symbol::{intern, Symbol};
use crate::term::Term;

/// A monotone counter handing out fresh nulls and fresh variables.
#[derive(Debug, Clone, Default)]
pub struct FreshSource {
    next_null: u64,
    next_var: u64,
}

impl FreshSource {
    /// Creates a source starting at zero.
    pub fn new() -> FreshSource {
        FreshSource::default()
    }

    /// Creates a source whose nulls start strictly above `max_existing`,
    /// guaranteeing freshness with respect to an instance already containing
    /// nulls up to that label.
    pub fn starting_after_null(max_existing: u64) -> FreshSource {
        FreshSource {
            next_null: max_existing.saturating_add(1),
            next_var: 0,
        }
    }

    /// Returns a fresh labelled null.
    pub fn fresh_null(&mut self) -> Term {
        let n = self.next_null;
        self.next_null += 1;
        Term::Null(n)
    }

    /// Returns a fresh variable with the given prefix, e.g. `prefix = "z"`
    /// produces `z#0`, `z#1`, ….  The `#` makes collisions with user-written
    /// variables impossible as long as users avoid `#` in names (the parser
    /// rejects it).
    pub fn fresh_var(&mut self, prefix: &str) -> Symbol {
        let v = self.next_var;
        self.next_var += 1;
        intern(&format!("{prefix}#{v}"))
    }

    /// Returns a fresh variable term (see [`FreshSource::fresh_var`]).
    pub fn fresh_var_term(&mut self, prefix: &str) -> Term {
        Term::Variable(self.fresh_var(prefix))
    }

    /// The label the next fresh null would receive (useful for tests).
    pub fn peek_null(&self) -> u64 {
        self.next_null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nulls_are_strictly_increasing() {
        let mut f = FreshSource::new();
        let a = f.fresh_null();
        let b = f.fresh_null();
        assert_ne!(a, b);
        assert_eq!(a, Term::Null(0));
        assert_eq!(b, Term::Null(1));
    }

    #[test]
    fn starting_after_skips_existing_labels() {
        let mut f = FreshSource::starting_after_null(41);
        assert_eq!(f.fresh_null(), Term::Null(42));
    }

    #[test]
    fn fresh_vars_do_not_collide() {
        let mut f = FreshSource::new();
        let a = f.fresh_var("z");
        let b = f.fresh_var("z");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("z#"));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = FreshSource::new();
        assert_eq!(f.peek_null(), 0);
        assert_eq!(f.peek_null(), 0);
        f.fresh_null();
        assert_eq!(f.peek_null(), 1);
    }
}
