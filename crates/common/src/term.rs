//! Terms: constants, labelled nulls and variables.
//!
//! Following Section 2 of the paper, we work with three disjoint countably
//! infinite sets: constants `C`, labelled nulls `N` (introduced by the chase
//! for existentially quantified variables) and regular variables `V` (used in
//! queries and dependencies).
//!
//! A [`Term`] is `Copy` (symbols are interned, nulls are numeric), so tuples
//! of terms can be cloned and hashed cheaply throughout the chase and the
//! homomorphism engine.

use crate::symbol::{intern, Symbol};
use std::fmt;

/// A term of the data model: a constant, a labelled null, or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant from `C`.  Constants are rigid: homomorphisms are the
    /// identity on them.
    Constant(Symbol),
    /// A labelled null from `N`, identified by a numeric label.  Nulls are
    /// invented by the chase when firing tgds with existential variables.
    Null(u64),
    /// A variable from `V`, used in queries and dependencies.
    Variable(Symbol),
}

impl Term {
    /// Convenience constructor interning `name` as a constant.
    pub fn constant(name: &str) -> Term {
        Term::Constant(intern(name))
    }

    /// Convenience constructor interning `name` as a variable.
    pub fn variable(name: &str) -> Term {
        Term::Variable(intern(name))
    }

    /// Convenience constructor for a labelled null.
    pub fn null(label: u64) -> Term {
        Term::Null(label)
    }

    /// Returns `true` if this term is a constant.
    pub fn is_constant(&self) -> bool {
        matches!(self, Term::Constant(_))
    }

    /// Returns `true` if this term is a labelled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Returns `true` if this term is a variable.
    pub fn is_variable(&self) -> bool {
        matches!(self, Term::Variable(_))
    }

    /// Returns the variable symbol if this term is a variable.
    pub fn as_variable(&self) -> Option<Symbol> {
        match self {
            Term::Variable(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the constant symbol if this term is a constant.
    pub fn as_constant(&self) -> Option<Symbol> {
        match self {
            Term::Constant(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the null label if this term is a labelled null.
    pub fn as_null(&self) -> Option<u64> {
        match self {
            Term::Null(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether a homomorphism is allowed to map this term to something other
    /// than itself.  Constants are rigid; nulls and variables are not.
    ///
    /// Note: when queries are *frozen* into canonical databases the paper
    /// treats the introduced constants `c(x)` "as nulls during the chase";
    /// that behaviour is handled at the freezing layer (`sac-query`), not
    /// here.
    pub fn is_rigid(&self) -> bool {
        self.is_constant()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Constant(c) => write!(f, "{c}"),
            Term::Null(n) => write!(f, "_:n{n}"),
            Term::Variable(v) => write!(f, "?{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify_correctly() {
        assert!(Term::constant("a").is_constant());
        assert!(Term::variable("x").is_variable());
        assert!(Term::null(3).is_null());
        assert!(!Term::constant("a").is_variable());
        assert!(!Term::variable("x").is_null());
    }

    #[test]
    fn accessors_return_expected_payloads() {
        let c = Term::constant("a");
        let v = Term::variable("x");
        let n = Term::null(7);
        assert_eq!(c.as_constant().map(|s| s.as_str()), Some("a".to_owned()));
        assert_eq!(v.as_variable().map(|s| s.as_str()), Some("x".to_owned()));
        assert_eq!(n.as_null(), Some(7));
        assert_eq!(c.as_variable(), None);
        assert_eq!(v.as_constant(), None);
        assert_eq!(c.as_null(), None);
    }

    #[test]
    fn equality_follows_interning() {
        assert_eq!(Term::constant("a"), Term::constant("a"));
        assert_ne!(Term::constant("a"), Term::variable("a"));
        assert_ne!(Term::null(1), Term::null(2));
    }

    #[test]
    fn only_constants_are_rigid() {
        assert!(Term::constant("a").is_rigid());
        assert!(!Term::variable("x").is_rigid());
        assert!(!Term::null(0).is_rigid());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Term::constant("a")), "a");
        assert_eq!(format!("{}", Term::variable("x")), "?x");
        assert_eq!(format!("{}", Term::null(5)), "_:n5");
    }
}
