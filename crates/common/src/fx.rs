//! A fast, deterministic hasher for small keys (FxHash-style).
//!
//! The tuple core stores dictionary codes (`u32`) and packed code rows, and
//! the engine's match sets and semijoin sweeps hash millions of them per
//! query.  `std`'s default SipHash is keyed and DoS-resistant but pays ~1ns
//! per byte; the workloads here hash *internal* dense codes, never untrusted
//! strings, so the rotate-multiply scheme used by rustc (`FxHasher`) is the
//! right trade: ~1 multiply per word, deterministic across runs and
//! processes (which the differential digest CI job relies on).
//!
//! Not for untrusted input: an adversary who controls keys can collide this
//! hasher at will.  Everything hashed with it in this workspace is derived
//! from dictionary codes the process itself assigned.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style multiply-rotate hasher.  Word-at-a-time, deterministic,
/// zero setup cost.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / φ, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Mix the tail length in so "ab" and "ab\0" stay distinct.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (no per-map random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] — the workspace's deterministic
/// content hash for packed code rows (see `sac-storage`'s dedup table).
#[inline]
pub fn fx_hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(fx_hash_one(&[1u32, 2, 3]), fx_hash_one(&[1u32, 2, 3]));
        assert_ne!(fx_hash_one(&[1u32, 2, 3]), fx_hash_one(&[3u32, 2, 1]));
    }

    #[test]
    fn maps_and_sets_work_with_the_alias_types() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(set.insert(vec![1, 2]));
        assert!(!set.insert(vec![1, 2]));
    }

    #[test]
    fn tail_bytes_and_length_are_mixed_in() {
        use std::hash::Hash;
        let mut a = FxHasher::default();
        "ab".hash(&mut a);
        let mut b = FxHasher::default();
        "ab\0".hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn all_zero_rows_of_different_lengths_do_not_collide() {
        // The length prefix keeps [0, 0] and [0, 0, 0] apart even though
        // every element contributes the same word.
        assert_ne!(fx_hash_one(&[0u32; 2][..]), fx_hash_one(&[0u32; 3][..]));
        assert_ne!(fx_hash_one(&[0u32; 0][..]), fx_hash_one(&[0u32; 1][..]));
    }
}
